// High-performance output via logging (Section 2.6).
//
// Two modes beyond the normal append log:
//   - direct-mapped: logged updates land at the corresponding offset of
//     the log segment, so an output device (here: a tiny "frame buffer")
//     receives a mirror of the data without mapped-I/O read-back problems;
//   - indexed: the log is a pure stream of data values, for streamed
//     device output.
// A separate "display process" renders the mirror asynchronously, never
// touching the application's memory.
//
// The run is also traced: the Chrome-trace JSON (loadable at
// ui.perfetto.dev) shows the logger records behind the mirrored stores.
#include <cstdio>
#include <string>

#include "src/base/check.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/json.h"

namespace {

constexpr uint32_t kWidth = 16;
constexpr uint32_t kHeight = 8;

void Render(lvm::LvmSystem& system, const lvm::LogSegment& mirror) {
  // The display process reads the *log segment* (the device), not the
  // application's frame buffer.
  for (uint32_t y = 0; y < kHeight; ++y) {
    std::printf("  ");
    for (uint32_t x = 0; x < kWidth; ++x) {
      uint32_t offset = (y * kWidth + x) * 4;
      uint32_t pixel = system.memory().Read(
          mirror.FrameAt(lvm::PageNumber(offset)) + lvm::PageOffset(offset), 4);
      std::putchar(pixel == 0 ? '.' : static_cast<int>('0' + pixel % 10));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  lvm::LvmSystem system;
  system.EnableTracing(1u << 14);
  lvm::Cpu& cpu = system.cpu();

  // --- Direct-mapped mode: a mirrored frame buffer. ---
  lvm::StdSegment* frame_buffer = system.CreateSegment(lvm::kPageSize);
  lvm::Region* fb_region = system.CreateRegion(frame_buffer);
  lvm::LogSegment* mirror = system.CreateLogSegment(1);
  lvm::AddressSpace* as = system.CreateAddressSpace();
  lvm::VirtAddr fb = as->BindRegion(fb_region);
  system.AttachLog(fb_region, mirror, lvm::LogMode::kDirectMapped);
  system.Activate(as);

  // The application draws a box and a diagonal; every store is mirrored to
  // the device by the logger, costing the application nothing extra.
  for (uint32_t x = 0; x < kWidth; ++x) {
    cpu.Write(fb + x * 4, 1);
    cpu.Write(fb + ((kHeight - 1) * kWidth + x) * 4, 1);
  }
  for (uint32_t y = 0; y < kHeight; ++y) {
    cpu.Write(fb + (y * kWidth) * 4, 2);
    cpu.Write(fb + (y * kWidth + kWidth - 1) * 4, 2);
    cpu.Write(fb + (y * kWidth + (y * 2) % kWidth) * 4, 7);
  }
  system.SyncLog(&cpu, mirror);

  std::printf("display process view (direct-mapped log = device mirror):\n");
  Render(system, *mirror);

  // --- Indexed mode: streamed values to a device. ---
  lvm::StdSegment* samples = system.CreateSegment(lvm::kPageSize);
  lvm::Region* samples_region = system.CreateRegion(samples);
  lvm::LogSegment* stream = system.CreateLogSegment(1);
  lvm::VirtAddr s = as->BindRegion(samples_region);
  system.AttachLog(samples_region, stream, lvm::LogMode::kIndexed);
  for (uint32_t i = 0; i < 12; ++i) {
    cpu.Write(s, (i * i) % 97);  // Same word every time: the stream keeps all values.
    cpu.Compute(500);
  }
  system.SyncLog(&cpu, stream);
  lvm::IndexedLogReader sample_reader(system.memory(), *stream);
  std::printf("\nstreamed output (indexed log, %zu values): ", sample_reader.size());
  for (size_t i = 0; i < sample_reader.size(); ++i) {
    std::printf("%u ", sample_reader.At(i));
  }
  std::printf("\n");

  // --- The trace of everything above, as Chrome trace-event JSON. ---
  std::string trace_json = system.trace().ChromeTraceJson();
  LVM_CHECK_MSG(lvm::obs::ValidateJson(trace_json), "trace is not valid JSON");
  const char* trace_path = "visualization_trace.json";
  LVM_CHECK(system.WriteTrace(trace_path));
  std::printf("\nwrote %s (%zu events, %llu dropped): load it at ui.perfetto.dev\n",
              trace_path, system.trace().size(),
              static_cast<unsigned long long>(system.trace().dropped_events()));
  return 0;
}
