// Quickstart: the Section 2.2 code sequence.
//
// Creates a segment, maps it through a region, attaches a log segment --
// the two lines that add logging -- and binds it into an address space.
// Every write the "application" then performs shows up as a 16-byte record
// {address, value, size, timestamp} in the log.
//
// Paper (Section 2.2):
//   Segment * seg_a = new StdSegment(size);
//   Region * reg_r = new StdRegion(seg_a);
//   LogSegment * ls = new LogSegment();
//   reg_r->log(ls);
//   as = thisProcess()->addressSpace();
//   reg_r->bind(as);
#include <cstdio>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

int main() {
  lvm::LvmSystem system;
  lvm::Cpu& cpu = system.cpu();

  // The Table 1 sequence, through this library's factories.
  lvm::StdSegment* seg_a = system.CreateSegment(4 * lvm::kPageSize);
  lvm::Region* reg_r = system.CreateRegion(seg_a);
  lvm::LogSegment* ls = system.CreateLogSegment();
  system.AttachLog(reg_r, ls);  // reg_r->log(ls)
  lvm::AddressSpace* as = system.CreateAddressSpace();
  lvm::VirtAddr base = as->BindRegion(reg_r);  // reg_r->bind(as)
  system.Activate(as);

  std::printf("logged region bound at 0x%08x (%u bytes)\n\n", base, reg_r->size());

  // The application writes to the region; the logger records every write.
  cpu.Write(base + 0x10, 4321);
  cpu.Write(base + 0x40, 0xdeadbeef);
  cpu.Write(base + 0x42 + 2, 0x77, 1);
  cpu.Write(base + lvm::kPageSize + 8, 12345);

  // A reader (this process or another) synchronizes with the end of the
  // log and walks the records.
  system.SyncLog(&cpu, ls);
  lvm::LogReader reader(system.memory(), *ls);
  std::printf("%zu log records:\n", reader.size());
  std::printf("%-12s %-12s %-6s %-12s %s\n", "phys addr", "value", "size", "timestamp",
              "virtual addr");
  for (lvm::LogRecord record : reader) {
    lvm::VirtAddr va = 0;
    bool mapped = RecordVirtualAddress(record, *reg_r, &va);
    std::printf("0x%08x   0x%08x   %-6u %-12u %s0x%08x\n", record.addr, record.value,
                record.size, record.timestamp, mapped ? "" : "? ", va);
  }

  std::printf("\nmachine time: %llu cycles (%.2f us at 25 MHz)\n",
              static_cast<unsigned long long>(cpu.now()), cpu.now() * 0.04);
  return 0;
}
