// Log-based distributed consistency (Section 2.6): a producer keeps a
// consumer's replica of a write-shared region consistent by streaming LVM
// log records at release points, side by side with the Munin-style
// twin/diff protocol.
#include <cstdio>

#include "src/consistency/protocols.h"

namespace {

template <typename Protocol>
void Demo(const char* name) {
  lvm::LvmSystem system;
  Protocol protocol(&system, 16 * lvm::kPageSize, lvm::ConsistencyCosts{});
  lvm::Cpu& cpu = system.cpu();

  // Interval 1: the producer updates a few scattered fields.
  protocol.Write(&cpu, 0, 11);
  protocol.Write(&cpu, lvm::kPageSize + 40, 22);
  protocol.Write(&cpu, 5 * lvm::kPageSize + 8, 33);
  protocol.Release(&cpu);  // Lock release: updates flow to the consumer.

  // Interval 2: a hot counter bumped many times.
  for (uint32_t i = 1; i <= 100; ++i) {
    protocol.Write(&cpu, 64, i);
  }
  protocol.Release(&cpu);

  std::printf("%-8s consumer sees: [0]=%u [p1+40]=%u [p5+8]=%u counter=%u\n", name,
              protocol.replica().ReadWord(0),
              protocol.replica().ReadWord(lvm::kPageSize + 40),
              protocol.replica().ReadWord(5 * lvm::kPageSize + 8),
              protocol.replica().ReadWord(64));
  std::printf("%-8s producer cycles: %-10llu bytes shipped: %-8llu messages: %llu\n\n", name,
              static_cast<unsigned long long>(cpu.now()),
              static_cast<unsigned long long>(protocol.channel().bytes_sent()),
              static_cast<unsigned long long>(protocol.channel().messages()));
}

}  // namespace

int main() {
  std::printf("producer/consumer consistency over a 64 KB write-shared region\n\n");
  Demo<lvm::LogBasedProtocol>("lvm");
  Demo<lvm::MuninTwinProtocol>("munin");
  std::printf("log-based consistency identifies updates for free at write time;\n"
              "munin coalesces the hot counter but pays twins and full-page diffs.\n");
  return 0;
}
