// Address-trace collection and analysis (Section 1): run a program against
// a logged region, then treat the log as a complete write trace -- compute
// its footprint, hot spots and burstiness, and feed it to a toy cache
// simulator, with zero instrumentation in the program itself.
#include <cstdio>

#include "src/base/rng.h"
#include "src/lvm/lvm_system.h"
#include "src/lvm/trace_stats.h"

namespace {

// The "program": a hash-table workload with a hot header, skewed bucket
// writes and periodic sequential flushes.
void RunWorkload(lvm::Cpu& cpu, lvm::VirtAddr base, uint32_t bytes) {
  lvm::Rng rng(7);
  for (uint32_t op = 0; op < 4000; ++op) {
    // Hot header counter.
    cpu.Write(base, op);
    // Skewed bucket update: square the uniform draw to bias low buckets.
    double u = rng.NextDouble();
    auto bucket = static_cast<uint32_t>(u * u * (bytes / 64));
    cpu.Write(base + 64 + bucket * 32, static_cast<uint32_t>(rng.Next64()));
    cpu.Compute(180);
    if (op % 512 == 0) {
      // Sequential flush burst.
      for (uint32_t i = 0; i < 64; ++i) {
        cpu.Write(base + bytes - 4096 + 4 * i, op + i);
      }
    }
  }
}

}  // namespace

int main() {
  lvm::LvmSystem system;
  lvm::Cpu& cpu = system.cpu();
  constexpr uint32_t kBytes = 16 * lvm::kPageSize;

  lvm::StdSegment* segment = system.CreateSegment(kBytes);
  lvm::Region* region = system.CreateRegion(segment);
  lvm::LogSegment* log = system.CreateLogSegment();
  lvm::AddressSpace* as = system.CreateAddressSpace();
  lvm::VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);

  RunWorkload(cpu, base, kBytes);
  system.SyncLog(&cpu, log);

  lvm::LogReader reader(system.memory(), *log);
  lvm::TraceStats stats = lvm::AnalyzeTrace(reader);

  std::printf("write trace of a 64 KB hash-table workload\n");
  std::printf("------------------------------------------\n");
  std::printf("records            %llu\n", static_cast<unsigned long long>(stats.records));
  std::printf("bytes written      %llu\n",
              static_cast<unsigned long long>(stats.bytes_written));
  std::printf("unique words       %u\n", stats.unique_words);
  std::printf("unique lines       %u\n", stats.unique_lines);
  std::printf("unique pages       %u  (of %u in the region)\n", stats.unique_pages,
              kBytes / lvm::kPageSize);
  std::printf("rewrites           %llu  (%.1f%% of writes hit already-written words)\n",
              static_cast<unsigned long long>(stats.rewrites),
              100.0 * static_cast<double>(stats.rewrites) /
                  static_cast<double>(stats.records));
  std::printf("write rate         %.1f writes / 1000 ticks\n", stats.WritesPerKilotick());
  std::printf("peak burst         %u writes within %u ticks\n", stats.peak_burst,
              stats.burst_window);
  std::printf("hottest page       frame 0x%05x000 with %llu writes\n", stats.hottest_page,
              static_cast<unsigned long long>(stats.hottest_page_writes));

  std::printf("\ntrace-driven cache estimates (16-byte lines):\n");
  for (uint32_t lines : {16u, 64u, 256u, 1024u}) {
    lvm::TraceCacheResult result = SimulateTraceCache(reader, lines);
    std::printf("  %5u-line direct-mapped cache: %5.1f%% write-miss rate\n", lines,
                100.0 * result.MissRate());
  }

  lvm::ReuseHistogram reuse = ComputeReuseHistogram(reader);
  std::printf("\nreuse-distance profile (LRU hit-fraction estimates):\n");
  for (uint32_t lines : {4u, 16u, 64u, 256u, 1024u}) {
    std::printf("  %5u-line LRU: %5.1f%% of writes reuse within that many lines\n", lines,
                100.0 * reuse.HitFraction(lines));
  }
  std::printf("  (%llu cold first touches)\n", static_cast<unsigned long long>(reuse.cold));
  return 0;
}
