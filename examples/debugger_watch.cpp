// Debugging with LVM (Sections 1, 2.7): a "debugger" attaches a log to a
// running program's data region -- no change to the program binary -- and
// uses the write history to find which write corrupted a variable.
//
// The log answers the classic question "who overwrote this?" and supports
// reverse execution: stepping the region's state backwards by undoing the
// records (here: replaying the prefix).
#include <cstdio>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/lvm/watch.h"

namespace {

// The buggy "program": fills a table, then a stray write clobbers the
// sentinel that lives after it.
void RunBuggyProgram(lvm::Cpu& cpu, lvm::VirtAddr base) {
  cpu.Write(base + 256, 0xA5A5A5A5);  // The sentinel.
  for (uint32_t i = 0; i <= 64; ++i) {  // Off-by-one: i == 64 is the bug.
    cpu.Write(base + 4 * i, 1000 + i);
    cpu.Compute(200);
  }
}

}  // namespace

int main() {
  lvm::LvmSystem system;
  lvm::Cpu& cpu = system.cpu();

  // The program under test, already running against its region.
  lvm::StdSegment* data = system.CreateSegment(4 * lvm::kPageSize);
  lvm::Region* region = system.CreateRegion(data);
  lvm::AddressSpace* as = system.CreateAddressSpace();
  lvm::VirtAddr base = as->BindRegion(region);
  system.Activate(as);

  // The debugger attaches a log to the region, dynamically (Section 2.7).
  lvm::LogSegment* log = system.CreateLogSegment();
  system.AttachLog(region, log);
  std::printf("debugger attached a log to region @0x%08x\n", base);

  RunBuggyProgram(cpu, base);

  lvm::VirtAddr sentinel = base + 256;
  uint32_t value = cpu.Read(sentinel);
  std::printf("sentinel @0x%08x = 0x%08x (expected 0xA5A5A5A5) -> %s\n\n", sentinel, value,
              value == 0xA5A5A5A5 ? "ok" : "CORRUPTED");

  // Watchpoint query over the log: every write to the sentinel, in order.
  system.SyncLog(&cpu, log);
  lvm::LogReader reader(system.memory(), *log);
  auto hits = FindWritesTo(reader, *region, sentinel, sentinel + 4);
  std::printf("write history of the sentinel (%zu hits among %zu records):\n", hits.size(),
              reader.size());
  size_t culprit = reader.size();
  for (const lvm::WatchHit& hit : hits) {
    std::printf("  record %-4zu t=%-8u wrote 0x%08x\n", hit.record_index, hit.timestamp,
                hit.value);
    if (hit.value != 0xA5A5A5A5) {
      culprit = hit.record_index;
    }
  }

  if (culprit < reader.size()) {
    std::printf("\nculprit: record %zu (the %zuth write in the program) wrote 0x%08x\n",
                culprit, culprit, reader.At(culprit).value);
    std::printf("-> the table loop ran one element past its end\n");
  }

  // Reverse execution: reconstruct the state just before the culprit by
  // replaying the log prefix onto a scratch copy.
  lvm::StdSegment* scratch = system.CreateSegment(data->size());
  lvm::LogApplier applier(&system);
  applier.ApplyRetargeted(&cpu, reader, 0, culprit, *data, scratch);
  uint32_t before = system.memory().Read(
      scratch->FrameAt(lvm::PageNumber(256)) + lvm::PageOffset(256), 4);
  std::printf("state rewound to just before the culprit: sentinel = 0x%08x\n", before);
  return before == 0xA5A5A5A5 ? 0 : 1;
}
