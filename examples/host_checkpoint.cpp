// Real-host demonstration: page-protection write logging and Li/Appel
// checkpointing on the running Linux kernel (the software end of the
// design space, Sections 2.6 and 5.1).
//
// An editor-like application mutates a buffer; mprotect/SIGSEGV machinery
// tracks dirty pages, produces Munin-style word-level updates, and rolls
// the buffer back to a checkpoint — no simulator involved.
#include <cstdio>
#include <cstring>

#include "src/hostlvm/host_checkpoint.h"
#include "src/hostlvm/write_protect_logger.h"

int main() {
  // --- Word-level write logging over 64 pages of real memory. ---
  lvm::WriteProtectLogger logger(64, /*word_level=*/true);
  auto* words = reinterpret_cast<uint32_t*>(logger.data());
  words[0] = 42;
  words[1024 + 7] = 43;  // Page 1.
  for (uint32_t i = 0; i < 50; ++i) {
    words[2048 + 3] = i;  // Page 2, rewritten 50 times.
  }
  auto updates = logger.CollectWordUpdates();
  std::printf("word-level log of the interval (%llu protection faults):\n",
              static_cast<unsigned long long>(logger.faults()));
  for (const lvm::HostWordUpdate& update : updates) {
    std::printf("  offset %-8llu = %u\n", static_cast<unsigned long long>(update.offset),
                update.value);
  }
  std::printf("  (50 rewrites of the same word coalesced to one update)\n\n");

  // --- Li/Appel incremental checkpointing. ---
  lvm::HostCheckpoint ckpt(64);
  auto* buffer = reinterpret_cast<char*>(ckpt.data());
  std::strcpy(buffer, "The quick brown fox");
  ckpt.Checkpoint();
  std::printf("checkpointed: \"%s\"\n", buffer);

  std::strcpy(buffer, "A catastrophic edit");
  std::printf("modified:     \"%s\" (%zu dirty pages)\n", buffer, ckpt.dirty_pages());

  ckpt.Restore();
  std::printf("restored:     \"%s\"\n", buffer);

  bool ok = std::strcmp(buffer, "The quick brown fox") == 0;
  std::printf("\nrollback %s; %llu faults total\n", ok ? "succeeded" : "FAILED",
              static_cast<unsigned long long>(ckpt.faults()));
  return ok ? 0 : 1;
}
