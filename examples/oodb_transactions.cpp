// Memory-mapped object database with atomic transactions (Sections 1, 2.5).
//
// Persistent "objects" live in recoverable logged virtual memory (RLVM):
// they are read and written like ordinary memory, every update is logged
// automatically (no set_range annotations anywhere), commit makes the
// updates durable on the RAM-disk redo log, and abort rolls the mapped
// image back via resetDeferredCopy.
#include <cstdio>

#include "src/rvm/ram_disk.h"
#include "src/rvm/rlvm.h"

namespace {

// A persistent object: a named counter with an update history length.
struct CounterView {
  lvm::VirtAddr value_addr;
  lvm::VirtAddr updates_addr;
};

CounterView CounterAt(const lvm::Rlvm& store, uint32_t index) {
  lvm::VirtAddr base = store.data_base() + index * 16;
  return CounterView{base, base + 4};
}

}  // namespace

int main() {
  lvm::LvmSystem system;
  lvm::RamDisk disk;
  lvm::AddressSpace* as = system.CreateAddressSpace();
  lvm::Rlvm store(&system, as, &disk, 1u << 20);
  system.Activate(as);
  lvm::Cpu& cpu = system.cpu();

  std::printf("object database: recoverable region at 0x%08x\n\n", store.data_base());

  // Transaction 1: create and bump two counters. Plain writes -- the VM
  // system does the logging.
  store.Begin(&cpu);
  for (uint32_t i = 0; i < 2; ++i) {
    CounterView counter = CounterAt(store, i);
    store.Write(&cpu, counter.value_addr, 100 * (i + 1));
    store.Write(&cpu, counter.updates_addr, 1);
  }
  store.Commit(&cpu);
  std::printf("tx1 committed: counter0=%u counter1=%u\n",
              store.Read(&cpu, CounterAt(store, 0).value_addr),
              store.Read(&cpu, CounterAt(store, 1).value_addr));

  // Transaction 2: a transfer that goes wrong and aborts.
  store.Begin(&cpu);
  CounterView c0 = CounterAt(store, 0);
  CounterView c1 = CounterAt(store, 1);
  uint32_t moved = 60;
  store.Write(&cpu, c0.value_addr, store.Read(&cpu, c0.value_addr) - moved);
  store.Write(&cpu, c1.value_addr, store.Read(&cpu, c1.value_addr) + moved);
  std::printf("tx2 in flight:  counter0=%u counter1=%u ... aborting\n",
              store.Read(&cpu, c0.value_addr), store.Read(&cpu, c1.value_addr));
  store.Abort(&cpu);
  std::printf("tx2 aborted:    counter0=%u counter1=%u (restored, no undo code)\n",
              store.Read(&cpu, c0.value_addr), store.Read(&cpu, c1.value_addr));

  // Transaction 3: the transfer, this time committed.
  store.Begin(&cpu);
  store.Write(&cpu, c0.value_addr, store.Read(&cpu, c0.value_addr) - moved);
  store.Write(&cpu, c1.value_addr, store.Read(&cpu, c1.value_addr) + moved);
  store.Write(&cpu, c0.updates_addr, store.Read(&cpu, c0.updates_addr) + 1);
  store.Write(&cpu, c1.updates_addr, store.Read(&cpu, c1.updates_addr) + 1);
  store.Commit(&cpu);
  std::printf("tx3 committed:  counter0=%u counter1=%u\n",
              store.Read(&cpu, c0.value_addr), store.Read(&cpu, c1.value_addr));

  std::printf("\n%llu commits, %llu aborts, %llu redo bytes on the RAM disk\n",
              static_cast<unsigned long long>(store.commits()),
              static_cast<unsigned long long>(store.aborts()),
              static_cast<unsigned long long>(disk.total_bytes_logged()));
  std::printf("machine time: %llu cycles\n", static_cast<unsigned long long>(cpu.now()));
  return 0;
}
