// Transactional memory on the running Linux kernel: the hostlvm machinery
// composed into begin/commit/abort over ordinary structs — what a process
// can get today with mprotect/SIGSEGV, and what LVM hardware would make
// nearly free (Sections 2.5, 5.1).
#include <cstdio>

#include "src/hostlvm/host_transaction.h"

namespace {

struct Inventory {
  uint32_t widgets;
  uint32_t gadgets;
  uint32_t revision;
};

}  // namespace

int main() {
  lvm::HostTransactionalRegion region(16);
  auto* inventory = region.data<Inventory>();

  region.Begin();
  inventory->widgets = 100;
  inventory->gadgets = 50;
  inventory->revision = 1;
  auto setup = region.Commit();
  std::printf("setup committed: widgets=%u gadgets=%u (%zu redo words, %llu faults)\n",
              inventory->widgets, inventory->gadgets, setup.size(),
              static_cast<unsigned long long>(region.faults()));

  // A transfer that goes wrong: plain C++ stores, page-granularity undo.
  region.Begin();
  inventory->widgets -= 30;
  inventory->gadgets += 30;
  std::printf("in flight:       widgets=%u gadgets=%u ... aborting\n", inventory->widgets,
              inventory->gadgets);
  region.Abort();
  std::printf("after abort:     widgets=%u gadgets=%u (restored by the VM system)\n",
              inventory->widgets, inventory->gadgets);

  // The real transfer; commit reports the word-level redo log.
  region.Begin();
  inventory->widgets -= 30;
  inventory->gadgets += 30;
  inventory->revision = 2;
  auto redo = region.Commit();
  std::printf("committed:       widgets=%u gadgets=%u revision=%u\n", inventory->widgets,
              inventory->gadgets, inventory->revision);
  std::printf("redo log of the transaction:\n");
  for (const lvm::HostWordUpdate& update : redo) {
    std::printf("  offset %-4llu = %u\n", static_cast<unsigned long long>(update.offset),
                update.value);
  }
  std::printf("\n%llu protection faults across %llu commits and %llu aborts\n",
              static_cast<unsigned long long>(region.faults()),
              static_cast<unsigned long long>(region.commits()),
              static_cast<unsigned long long>(region.aborts()));
  return 0;
}
