// Optimistic parallel simulation (Section 2.4): PHOLD on the Time Warp
// engine, once with conventional copy-based state saving and once with LVM
// (logged working region + deferred-copy checkpoint + CULT).
//
// Both runs compute the identical final state (verified against the
// sequential reference); the LVM run avoids the per-event state copy.
#include <cstdio>
#include <vector>

#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace {

struct RunStats {
  uint64_t events = 0;
  uint64_t rollbacks = 0;
  uint64_t anti_messages = 0;
  double efficiency = 0;
  lvm::Cycles elapsed = 0;
  uint64_t digest = 0;
};

RunStats RunOnce(lvm::StateSaving saving, const std::vector<lvm::Event>& bootstrap,
                 lvm::VirtualTime end_time) {
  lvm::PholdModel::Params model_params;
  model_params.mean_delay = 8.0;
  model_params.compute_cycles = 1024;
  model_params.writes = 4;
  // Mostly-local hops, as in a spatially decomposed simulation: rollbacks
  // stay rare, which is the regime the paper targets (Section 2.4).
  model_params.locality = 0.95;
  model_params.locality_domain = 8;
  lvm::PholdModel model(model_params);

  lvm::LvmConfig machine_config;
  machine_config.num_cpus = 4;  // The ParaDiGM prototype's four processors.
  lvm::LvmSystem system(machine_config);

  lvm::TimeWarpConfig config;
  config.num_schedulers = 4;
  config.objects_per_scheduler = 8;
  config.object_size = 512;
  config.state_saving = saving;
  config.cult_interval = 32;
  lvm::TimeWarpSimulation simulation(&system, &model, config);
  for (const lvm::Event& event : bootstrap) {
    simulation.Bootstrap(event);
  }
  simulation.Run(end_time);

  RunStats stats;
  stats.events = simulation.total_events_processed();
  stats.rollbacks = simulation.total_rollbacks();
  stats.anti_messages = simulation.total_anti_messages();
  stats.efficiency = simulation.Efficiency();
  stats.elapsed = simulation.ElapsedCycles();
  stats.digest = OptimisticDigest(&simulation, end_time);
  return stats;
}

}  // namespace

int main() {
  constexpr lvm::VirtualTime kEnd = 4000;
  std::vector<lvm::Event> bootstrap;
  lvm::Rng rng(2024);
  for (int job = 0; job < 32; ++job) {
    lvm::Event event;
    event.time = 1 + rng.Uniform(8);
    event.target_object = static_cast<uint32_t>(rng.Uniform(32));
    event.payload = rng.Next64();
    bootstrap.push_back(event);
  }

  std::printf("PHOLD, 32 jobs, 32 objects on 4 schedulers, horizon %llu\n\n",
              static_cast<unsigned long long>(kEnd));

  RunStats copy = RunOnce(lvm::StateSaving::kCopy, bootstrap, kEnd);
  RunStats lvm_run = RunOnce(lvm::StateSaving::kLvm, bootstrap, kEnd);

  std::printf("%-24s %-16s %-16s\n", "", "copy-based", "LVM");
  std::printf("%-24s %-16llu %-16llu\n", "events processed",
              static_cast<unsigned long long>(copy.events),
              static_cast<unsigned long long>(lvm_run.events));
  std::printf("%-24s %-16llu %-16llu\n", "rollbacks",
              static_cast<unsigned long long>(copy.rollbacks),
              static_cast<unsigned long long>(lvm_run.rollbacks));
  std::printf("%-24s %-16llu %-16llu\n", "anti-messages",
              static_cast<unsigned long long>(copy.anti_messages),
              static_cast<unsigned long long>(lvm_run.anti_messages));
  std::printf("%-24s %-16.3f %-16.3f\n", "efficiency", copy.efficiency,
              lvm_run.efficiency);
  std::printf("%-24s %-16llu %-16llu\n", "elapsed (cycles)",
              static_cast<unsigned long long>(copy.elapsed),
              static_cast<unsigned long long>(lvm_run.elapsed));
  std::printf("%-24s %-16llx %-16llx\n", "state digest",
              static_cast<unsigned long long>(copy.digest),
              static_cast<unsigned long long>(lvm_run.digest));
  if (copy.digest == lvm_run.digest) {
    std::printf("\nfinal states identical; LVM speedup %.3fx\n",
                static_cast<double>(copy.elapsed) / static_cast<double>(lvm_run.elapsed));
    return 0;
  }
  std::printf("\nERROR: state digests differ!\n");
  return 1;
}
