// Direct tests of the kernel's log-maintenance operations: truncate to a
// prefix, compact away a consumed prefix, capacity management, and their
// interaction with the hardware tail across page boundaries.
#include <gtest/gtest.h>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

class LogMaintenanceTest : public ::testing::Test {
 protected:
  LogMaintenanceTest() {
    segment_ = system_.CreateSegment(8 * kPageSize);
    region_ = system_.CreateRegion(segment_);
    log_ = system_.CreateLogSegment(2);
    as_ = system_.CreateAddressSpace();
    base_ = as_->BindRegion(region_);
    system_.AttachLog(region_, log_);
    system_.Activate(as_);
  }

  // Appends `n` records with values starting at `first_value`.
  void Append(uint32_t n, uint32_t first_value) {
    Cpu& cpu = system_.cpu();
    for (uint32_t i = 0; i < n; ++i) {
      cpu.Write(base_ + 4 * ((first_value + i) % 1024), first_value + i);
      cpu.Compute(300);
    }
    system_.SyncLog(&cpu, log_);
  }

  LvmSystem system_;
  StdSegment* segment_ = nullptr;
  Region* region_ = nullptr;
  LogSegment* log_ = nullptr;
  AddressSpace* as_ = nullptr;
  VirtAddr base_ = 0;
};

constexpr uint32_t kPerPage = kPageSize / kLogRecordSize;

TEST_F(LogMaintenanceTest, TruncateToMidPagePrefix) {
  Append(100, 0);
  system_.TruncateLogTo(&system_.cpu(), log_, 40);
  LogReader after(system_.memory(), *log_);
  ASSERT_EQ(after.size(), 40u);
  EXPECT_EQ(after.At(39).value, 39u);
  // Appending resumes exactly at the cut.
  Append(5, 1000);
  LogReader resumed(system_.memory(), *log_);
  ASSERT_EQ(resumed.size(), 45u);
  EXPECT_EQ(resumed.At(40).value, 1000u);
  EXPECT_EQ(resumed.At(39).value, 39u);
}

TEST_F(LogMaintenanceTest, TruncateAcrossPageBoundary) {
  Append(2 * kPerPage + 50, 0);
  // Keep a prefix that ends inside the second page.
  system_.TruncateLogTo(&system_.cpu(), log_, kPerPage + 10);
  Append(20, 5000);
  LogReader reader(system_.memory(), *log_);
  ASSERT_EQ(reader.size(), kPerPage + 30);
  EXPECT_EQ(reader.At(kPerPage + 9).value, kPerPage + 9);
  EXPECT_EQ(reader.At(kPerPage + 10).value, 5000u);
}

TEST_F(LogMaintenanceTest, CompactDropsPrefixKeepsSuffix) {
  Append(kPerPage + 60, 0);
  system_.CompactLog(&system_.cpu(), log_, kPerPage + 20);
  LogReader reader(system_.memory(), *log_);
  ASSERT_EQ(reader.size(), 40u);
  for (uint32_t i = 0; i < 40; ++i) {
    EXPECT_EQ(reader.At(i).value, kPerPage + 20 + i);
  }
  // New records append after the survivors.
  Append(3, 9000);
  LogReader extended(system_.memory(), *log_);
  ASSERT_EQ(extended.size(), 43u);
  EXPECT_EQ(extended.At(40).value, 9000u);
}

TEST_F(LogMaintenanceTest, CompactEverythingEqualsTruncate) {
  Append(30, 0);
  system_.CompactLog(&system_.cpu(), log_, 30);
  LogReader reader(system_.memory(), *log_);
  EXPECT_EQ(reader.size(), 0u);
  Append(2, 77);
  LogReader after(system_.memory(), *log_);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after.At(0).value, 77u);
}

TEST_F(LogMaintenanceTest, CompactNothingIsIdentity) {
  Append(25, 0);
  system_.CompactLog(&system_.cpu(), log_, 0);
  LogReader reader(system_.memory(), *log_);
  ASSERT_EQ(reader.size(), 25u);
  EXPECT_EQ(reader.At(24).value, 24u);
}

TEST_F(LogMaintenanceTest, EnsureLogCapacityPreallocates) {
  uint32_t pages_before = log_->page_count();
  system_.EnsureLogCapacity(log_, pages_before + 6);
  EXPECT_GE(log_->page_count(), pages_before + 6);
  // Extension in advance means no capacity-driven record loss even with
  // auto-extension off (re-checked by RecordsLostWithoutExtension).
  Append(3 * kPerPage, 0);
  EXPECT_EQ(log_->records_lost, 0u);
}

TEST_F(LogMaintenanceTest, TruncatePastEndAborts) {
  Append(10, 0);
  EXPECT_DEATH(system_.TruncateLogTo(&system_.cpu(), log_, 11), "");
}

TEST_F(LogMaintenanceTest, RepeatedCompactionCycles) {
  // A producer/consumer regime: append, consume half, compact — the log
  // stays bounded and nothing is lost or duplicated.
  uint32_t next_value = 0;
  uint32_t expected_front = 0;
  for (int round = 0; round < 20; ++round) {
    Append(60, next_value);
    next_value += 60;
    LogReader reader(system_.memory(), *log_);
    size_t drop = reader.size() / 2;
    EXPECT_EQ(reader.At(0).value, expected_front);
    expected_front += static_cast<uint32_t>(drop);
    system_.CompactLog(&system_.cpu(), log_, drop);
  }
  LogReader reader(system_.memory(), *log_);
  EXPECT_EQ(reader.At(0).value, expected_front);
  EXPECT_EQ(reader.At(reader.size() - 1).value, next_value - 1);
}

}  // namespace
}  // namespace lvm
