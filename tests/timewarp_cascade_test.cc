// Deterministic rollback-cascade scenarios: a straggler rolls one
// scheduler back, its anti-messages roll a third scheduler back, and the
// re-execution converges to the sequential answer. These pin the exact
// protocol paths (anti-message annihilation in the input queue versus
// after processing) that the randomized sweeps hit only statistically.
#include <gtest/gtest.h>

#include <vector>

#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

// A scripted model: the payload directly encodes what the event does.
//   kAdd    — add the payload's low bits to the object's accumulator.
//   kRelay  — add, then send a kAdd to `relay_target` at time+`relay_delay`.
struct Script {
  static constexpr uint64_t kAdd = 0x1ull << 60;
  static constexpr uint64_t kRelay = 0x2ull << 60;

  static uint64_t Add(uint32_t amount) { return kAdd | amount; }
  static uint64_t Relay(uint32_t target, uint32_t delay, uint32_t amount) {
    return kRelay | (static_cast<uint64_t>(target) << 40) |
           (static_cast<uint64_t>(delay) << 24) | amount;
  }
};

class ScriptedModel : public SimulationModel {
 public:
  void Execute(Cpu* cpu, Scheduler* scheduler, const Event& event) override {
    VirtAddr object = scheduler->ObjectAddr(event.target_object % scheduler->num_objects());
    auto amount = static_cast<uint32_t>(event.payload & 0xFFFFFF);
    cpu->Write(object, cpu->Read(object) + amount);
    cpu->Compute(100);
    if ((event.payload & Script::kRelay) != 0) {
      Event relayed;
      relayed.target_object = static_cast<uint32_t>((event.payload >> 40) & 0xFFFFF);
      relayed.time = event.time + ((event.payload >> 24) & 0xFFFF);
      relayed.payload = Script::Add(amount * 1000);
      scheduler->Send(relayed);
    }
  }
};

struct Outcome {
  std::vector<uint32_t> accumulators;
  std::vector<uint64_t> rollbacks;
  uint64_t anti_messages = 0;
};

Outcome RunScripted(StateSaving saving, const std::vector<Event>& bootstrap, uint32_t schedulers) {
  LvmSystem system;
  ScriptedModel model;
  TimeWarpConfig config;
  config.num_schedulers = schedulers;
  config.objects_per_scheduler = 1;
  config.object_size = 64;
  config.state_saving = saving;
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : bootstrap) {
    sim.Bootstrap(event);
  }
  sim.Run(10000);
  Outcome outcome;
  for (uint32_t i = 0; i < schedulers; ++i) {
    Scheduler& scheduler = sim.scheduler(i);
    system.Activate(scheduler.address_space(), scheduler.cpu()->id());
    outcome.accumulators.push_back(scheduler.cpu()->Read(scheduler.ObjectAddr(0)));
    outcome.rollbacks.push_back(scheduler.rollbacks());
    outcome.anti_messages += scheduler.anti_messages_sent();
  }
  return outcome;
}

std::vector<Event> CascadeBootstrap() {
  // Round-robin order is scheduler 0, 1, 2 — so the trigger chain sits on
  // scheduler 2, whose turn comes after scheduler 1 has sped ahead.
  //   - Scheduler 1 (object 1): adds at 10..100; the event at 60 relays
  //     6000 to object 0 at 65.
  //   - Scheduler 0 (object 0): one add at 70, plus the relayed 6000 at
  //     65 — which it processes in round 7, before scheduler 1's rollback.
  //   - Scheduler 2 (object 2): adds at 1..5, then at 50 a relay of 3000
  //     to object 1 at 55. Scheduler 2 reaches the event at 50 in round 6,
  //     when scheduler 1's LVT is already 60: the 55 is a straggler.
  // Scheduler 1's rollback cancels its 60->65 relay; the anti-message
  // finds object 0's copy already processed and rolls scheduler 0 back
  // too: the cascade. Re-execution converges.
  std::vector<Event> events;
  for (uint32_t t = 10; t <= 100; t += 10) {
    Event e;
    e.time = t;
    e.target_object = 1;
    e.payload = t == 60 ? Script::Relay(0, 5, 6) : Script::Add(t);
    events.push_back(e);
  }
  Event own;
  own.time = 70;
  own.target_object = 0;
  own.payload = Script::Add(7);
  events.push_back(own);
  for (uint32_t t = 1; t <= 5; ++t) {
    Event filler;
    filler.time = t;
    filler.target_object = 2;
    filler.payload = Script::Add(t);
    events.push_back(filler);
  }
  Event trigger;
  trigger.time = 50;
  trigger.target_object = 2;
  trigger.payload = Script::Relay(1, 5, 3);
  events.push_back(trigger);
  return events;
}

TEST(CascadeTest, ChainedRollbackConverges) {
  for (StateSaving saving : {StateSaving::kCopy, StateSaving::kLvm}) {
    Outcome outcome = RunScripted(saving, CascadeBootstrap(), 3);
    // Expected accumulators (sequential):
    //   object 0: 7 + 6000 (relay from object 1's event at 60)
    //   object 1: 10+20+..+100 with 60's amount 6 instead of 60, + 3000
    //   object 2: 1+2+3+4+5 + 3
    EXPECT_EQ(outcome.accumulators[0], 6007u) << "saving " << static_cast<int>(saving);
    EXPECT_EQ(outcome.accumulators[1], 550u - 60 + 6 + 3000) << static_cast<int>(saving);
    EXPECT_EQ(outcome.accumulators[2], 18u) << static_cast<int>(saving);
    // The cascade really happened: the straggler rolled scheduler 1 back,
    // and its anti-message rolled scheduler 0 back.
    EXPECT_GE(outcome.rollbacks[1], 1u);
    EXPECT_GE(outcome.rollbacks[0], 1u);
    EXPECT_GE(outcome.anti_messages, 1u);
  }
}

TEST(CascadeTest, AntiMessageAnnihilatesUnprocessedCopy) {
  // Variant where the victim's relayed event sits unprocessed in scheduler
  // 0's queue when the anti-message arrives (the cheap annihilation path):
  // scheduler 0 is kept busy with a long chain of early events, so the
  // relayed event at t=100 is still queued behind them when the straggler
  // (from scheduler 2, after scheduler 1's turn) hits.
  std::vector<Event> events;
  for (uint32_t t = 10; t <= 40; t += 10) {
    Event e;
    e.time = t;
    e.target_object = 1;
    e.payload = t == 40 ? Script::Relay(0, 60, 4) : Script::Add(t);
    events.push_back(e);
  }
  for (uint32_t t = 1; t <= 20; ++t) {
    Event busy;
    busy.time = t;
    busy.target_object = 0;
    busy.payload = Script::Add(t);
    events.push_back(busy);
  }
  for (uint32_t t = 1; t <= 4; ++t) {
    Event filler;
    filler.time = t;
    filler.target_object = 2;
    filler.payload = Script::Add(t);
    events.push_back(filler);
  }
  Event trigger;
  trigger.time = 15;
  trigger.target_object = 2;
  trigger.payload = Script::Relay(1, 2, 9);  // Straggler at 17 for scheduler 1.
  events.push_back(trigger);

  for (StateSaving saving : {StateSaving::kCopy, StateSaving::kLvm}) {
    Outcome outcome = RunScripted(saving, events, 3);
    // Object 0: 1+..+20 plus the (re-sent) relayed 4000.
    EXPECT_EQ(outcome.accumulators[0], 210u + 4000);
    EXPECT_EQ(outcome.accumulators[1], 10u + 20 + 30 + 4 + 9000);
    EXPECT_EQ(outcome.accumulators[2], 1u + 2 + 3 + 4 + 9);
    // Scheduler 0 never rolled back: the anti-message annihilated its
    // queued copy.
    EXPECT_EQ(outcome.rollbacks[0], 0u);
    EXPECT_GE(outcome.anti_messages, 1u);
  }
}

TEST(CascadeTest, RollbackToCheckpointBoundary) {
  // Fossil-collect to a GVT, then force a rollback to exactly that time:
  // the LVM saver must accept to == checkpoint_time.
  LvmSystem system;
  ScriptedModel model;
  TimeWarpConfig config;
  config.num_schedulers = 2;
  config.objects_per_scheduler = 1;
  config.object_size = 64;
  config.state_saving = StateSaving::kLvm;
  TimeWarpSimulation sim(&system, &model, config);
  for (uint32_t t = 20; t <= 60; t += 20) {
    Event e;
    e.time = t;
    e.target_object = 1;
    e.payload = Script::Add(t);
    sim.Bootstrap(e);
  }
  Event trigger;
  trigger.time = 30;
  trigger.target_object = 0;
  trigger.payload = Script::Relay(1, 0, 5);  // Relay lands at exactly 30.
  sim.Bootstrap(trigger);
  sim.Run(10000);
  Scheduler& victim = sim.scheduler(1);
  system.Activate(victim.address_space(), victim.cpu()->id());
  EXPECT_EQ(victim.cpu()->Read(victim.ObjectAddr(0)), 20u + 40 + 60 + 5000);
}

}  // namespace
}  // namespace lvm
