// Guest-level happens-before race detector (src/race).
//
// Covers the detector end to end:
//   - a seeded true positive: two simulated CPUs racing on a logged page
//     under a *replayable* deterministic schedule (token sync edges off)
//     yield exactly one deduplicated write-write report with the right
//     address, size and CPU pair, exported as strict JSON and cross-
//     checked into an InvariantChecker kUnorderedLoggedWrites violation;
//   - false-positive guards: token-scheduled deterministic runs across
//     the par_schedule_fuzz seed sweep report zero races, and a parallel-
//     mode producer/consumer hand-off annotated with GuestSyncEvent is
//     race-free while its unannotated twin is not;
//   - the detector must not perturb the simulation: with the detector on,
//     a parallel run's log contents and per-CPU cycle counts are
//     bit-identical, so records/sim-second stays within the 2.5x bound
//     (it is exactly 1.0x) of the detector-off run;
//   - the shadow-memory budget: a tiny budget forces LRU evictions
//     (counted, never crashing) and logged_only filtering works.
//
// When LVM_RACE_REPORT is set (scripts/check.sh --racecheck-only), the
// seeded fixture writes its JSON report there for the CI artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/check/invariant_checker.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/json.h"
#include "src/par/engine.h"
#include "src/race/race_detector.h"

namespace lvm {
namespace {

// --- seeded true positive -------------------------------------------------

TEST(RaceCheckTest, SeededGuestRaceYieldsOneDeduplicatedReport) {
  LvmConfig config;
  config.num_cpus = 2;
  LvmSystem system(config);
  InvariantChecker checker(&system);
  race::RaceDetector* detector = system.EnableRaceDetection();

  StdSegment* segment = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(16);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as, 0);
  system.Activate(as, 1);

  const VirtAddr shared = base + 8;  // The racing word, at page offset 8.

  // Deterministic schedule, but with the token handoff *not* published as
  // a sync edge: the detector sees only the guest program's own ordering,
  // and the guest program has none — a real race, found under a seed any
  // failure can replay.
  par::EngineConfig engine_config;
  engine_config.mode = par::Mode::kDeterministic;
  engine_config.seed = 42;
  engine_config.publish_token_sync = false;
  par::ParallelEngine engine(&system, engine_config);
  for (int worker = 0; worker < 2; ++worker) {
    // Each worker hammers the shared word and a private word; only the
    // shared word races.
    VirtAddr mine = base + kPageSize + 64u * static_cast<VirtAddr>(worker);
    engine.AddWorker(nullptr, [shared, mine](Cpu& cpu, uint64_t step) {
      cpu.Write(shared, static_cast<uint32_t>(step));
      cpu.Write(mine, static_cast<uint32_t>(step));
      cpu.Compute(50);
      return step + 1 < 40;
    });
  }
  engine.Run();
  system.SyncLog(&system.cpu(0), log);

  std::vector<race::RaceReport> reports = system.GetRaceReports();
  ASSERT_EQ(reports.size(), 1u) << detector->ReportsJson();
  const race::RaceReport& report = reports[0];
  EXPECT_EQ(report.kind, race::RaceKind::kWriteWrite);
  EXPECT_TRUE(report.logged);
  EXPECT_EQ(report.size, 4u);
  EXPECT_EQ(report.va, shared);
  EXPECT_EQ(PageOffset(report.paddr), 8u);
  EXPECT_EQ(std::min(report.cpu_a, report.cpu_b), 0);
  EXPECT_EQ(std::max(report.cpu_a, report.cpu_b), 1);
  // The two workers alternate many times; every repeat folds into the one
  // report instead of producing a new one.
  EXPECT_GE(report.count, 2u);
  EXPECT_GE(detector->races_deduped(), 1u);
  EXPECT_FALSE(report.pcs_a.empty());
  EXPECT_FALSE(report.pcs_b.empty());

  // The machine invariants still hold; the race surfaces through the
  // checker as a log-soundness violation.
  checker.CheckDrained();
  EXPECT_TRUE(checker.ok()) << checker.Report();
  checker.CheckRaceFree(*detector);
  EXPECT_TRUE(checker.Has(InvariantChecker::Violation::Kind::kUnorderedLoggedWrites))
      << checker.Report();

  // The JSON export is strict (obs validator) and lands where check.sh
  // points LVM_RACE_REPORT for the CI artifact.
  const std::string json = detector->ReportsJson();
  EXPECT_TRUE(obs::ValidateJson(json)) << json;
  if (const char* path = std::getenv("LVM_RACE_REPORT")) {
    EXPECT_TRUE(detector->WriteReportJson(path));
  }
}

TEST(RaceCheckTest, SeededRaceIsStableAcrossReruns) {
  // The same seed must yield the identical report (same pair, same word):
  // the fixture is replayable evidence, not a flaky sighting.
  std::vector<race::RaceReport> first;
  for (int run = 0; run < 2; ++run) {
    LvmConfig config;
    config.num_cpus = 2;
    LvmSystem system(config);
    system.EnableRaceDetection();
    StdSegment* segment = system.CreateSegment(kPageSize);
    Region* region = system.CreateRegion(segment);
    LogSegment* log = system.CreateLogSegment(8);
    AddressSpace* as = system.CreateAddressSpace();
    VirtAddr base = as->BindRegion(region);
    system.AttachLog(region, log);
    system.Activate(as, 0);
    system.Activate(as, 1);

    par::EngineConfig engine_config;
    engine_config.mode = par::Mode::kDeterministic;
    engine_config.seed = 7;
    engine_config.publish_token_sync = false;
    par::ParallelEngine engine(&system, engine_config);
    for (int worker = 0; worker < 2; ++worker) {
      engine.AddWorker(nullptr, [base](Cpu& cpu, uint64_t step) {
        cpu.Write(base + 4 * (step % 8), static_cast<uint32_t>(step));
        cpu.Compute(40);
        return step + 1 < 32;
      });
    }
    engine.Run();

    std::vector<race::RaceReport> reports = system.GetRaceReports();
    ASSERT_FALSE(reports.empty());
    if (run == 0) {
      first = reports;
    } else {
      ASSERT_EQ(reports.size(), first.size());
      for (size_t i = 0; i < reports.size(); ++i) {
        EXPECT_EQ(reports[i].paddr, first[i].paddr);
        EXPECT_EQ(reports[i].kind, first[i].kind);
        EXPECT_EQ(reports[i].cpu_a, first[i].cpu_a);
        EXPECT_EQ(reports[i].cpu_b, first[i].cpu_b);
        EXPECT_EQ(reports[i].count, first[i].count);
      }
    }
  }
}

// --- false-positive guard: the fuzz sweep stays clean ---------------------

constexpr int kSweepCpus = 4;
constexpr uint32_t kSweepSteps = 400;
constexpr uint32_t kSweepRegionPages = 4;
constexpr uint32_t kSweepRegionWords = kSweepRegionPages * kPageSize / 4;

void RunTokenScheduledTrial(uint64_t seed, bool hot) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed << (hot ? " (hot)" : " (paced)"));
  LvmConfig config;
  config.num_cpus = kSweepCpus;
  LvmSystem system(config);
  race::RaceDetector* detector = system.EnableRaceDetection();
  InvariantChecker checker(&system);

  StdSegment* segment = system.CreateSegment(kSweepRegionPages * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(8);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  for (int i = 0; i < kSweepCpus; ++i) {
    system.Activate(as, i);
  }

  par::EngineConfig engine_config;
  engine_config.mode = par::Mode::kDeterministic;
  engine_config.seed = seed;
  engine_config.min_quantum = 1;
  engine_config.max_quantum = 24;
  par::ParallelEngine engine(&system, engine_config);
  for (int worker = 0; worker < kSweepCpus; ++worker) {
    auto rng = std::make_shared<Rng>(seed * 8191 + static_cast<uint64_t>(worker));
    engine.AddWorker(nullptr, [rng, base, hot](Cpu& cpu, uint64_t step) {
      VirtAddr va = base + 4 * static_cast<VirtAddr>(rng->Uniform(kSweepRegionWords));
      if (step % 5 == 4) {
        cpu.Read(va);  // Exercise the read shadow paths too.
      } else {
        cpu.Write(va, static_cast<uint32_t>(rng->Next64()));
      }
      cpu.Compute(hot ? rng->UniformRange(0, 8) : rng->UniformRange(40, 120));
      return step + 1 < kSweepSteps;
    });
  }
  engine.Run();
  system.SyncLog(&system.cpu(0), log);

  // The token schedule serializes the workers and every handoff is a sync
  // edge, so a report here would be a detector false positive.
  EXPECT_EQ(system.GetRaceReports().size(), 0u) << detector->ReportsJson();
  checker.CheckRaceFree(*detector);
  EXPECT_TRUE(checker.ok()) << checker.Report();
  if (hot) {
    EXPECT_GT(system.overload_suspensions(), 0u);
  }
}

TEST(RaceCheckTest, TokenScheduledFuzzSweepReportsZeroRaces) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 99ull, 1000ull, 424242ull}) {
    RunTokenScheduledTrial(seed, /*hot=*/false);
  }
}

TEST(RaceCheckTest, TokenScheduledHotSweepReportsZeroRaces) {
  for (uint64_t seed : {11ull, 12ull, 13ull, 777ull, 31337ull, 5550123ull}) {
    RunTokenScheduledTrial(seed, /*hot=*/true);
  }
}

// --- GuestSyncEvent annotation (parallel free-running mode) ---------------

// Producer/consumer hand-off over a shared logged page: worker 0 writes
// the shared words, signals through a host-side flag (real mutual
// exclusion, invisible to the detector), and worker 1 then overwrites
// them. Annotated with a release/acquire pair the hand-off is race-free;
// without the annotation the same execution is (correctly) a race.
size_t RunHandoff(bool annotate) {
  LvmConfig config;
  config.num_cpus = 2;
  LvmSystem system(config);
  system.EnableRaceDetection();

  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  LogSegment* log0 = system.CreateLogSegment(8);
  LogSegment* log1 = system.CreateLogSegment(8);
  system.AttachPerCpuLogs(region, {log0, log1});
  system.Activate(as, 0);
  system.Activate(as, 1);
  system.TouchRegion(&system.cpu(0), region);

  constexpr uint64_t kChannel = 7;
  constexpr uint32_t kWords = 16;
  auto handed_off = std::make_shared<std::atomic<bool>>(false);

  par::ParallelEngine engine(&system, par::EngineConfig{});
  engine.AddWorker(log0, [&system, base, annotate, handed_off](Cpu& cpu, uint64_t step) {
    if (step < kWords) {
      cpu.Write(base + 4 * static_cast<VirtAddr>(step), 0xA0000000u + static_cast<uint32_t>(step));
      cpu.Compute(40);
      return true;
    }
    if (annotate) {
      system.GuestSyncEvent(0, LvmSystem::SyncOp::kRelease, kChannel);
    }
    handed_off->store(true, std::memory_order_release);
    return false;
  });
  // B's phase is its own counter, not the step index: `step` keeps
  // advancing during the spin-wait, so the acquire must not key off it.
  auto phase = std::make_shared<uint32_t>(0);
  engine.AddWorker(log1, [&system, base, annotate, handed_off, phase](Cpu& cpu, uint64_t) {
    if (!handed_off->load(std::memory_order_acquire)) {
      cpu.Compute(1);
      return true;
    }
    const uint32_t mine = (*phase)++;
    if (mine == 0 && annotate) {
      system.GuestSyncEvent(1, LvmSystem::SyncOp::kAcquire, kChannel);
    }
    if (mine < kWords) {
      cpu.Write(base + 4 * static_cast<VirtAddr>(mine), 0xB0000000u + mine);
      cpu.Compute(40);
      return true;
    }
    return false;
  });
  engine.Run();
  return system.GetRaceReports().size();
}

TEST(RaceCheckTest, AnnotatedHandoffIsRaceFree) {
  EXPECT_EQ(RunHandoff(/*annotate=*/true), 0u);
}

TEST(RaceCheckTest, UnannotatedHandoffIsReported) {
  EXPECT_GE(RunHandoff(/*annotate=*/false), 1u);
}

// --- the detector must not perturb the simulation -------------------------

struct ThroughputPoint {
  uint64_t records = 0;
  Cycles makespan = 0;
};

ThroughputPoint RunScalingWorkload(bool racecheck) {
  constexpr int kWorkers = 4;
  constexpr uint32_t kWrites = 4000;
  LvmConfig config;
  config.num_cpus = kWorkers;
  LvmSystem system(config);
  if (racecheck) {
    system.EnableRaceDetection();
  }
  AddressSpace* as = system.CreateAddressSpace();
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  std::vector<VirtAddr> bases;
  for (int i = 0; i < kWorkers; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(4 * kPageSize));
    bases.push_back(as->BindRegion(region));
    LogSegment* log = system.CreateLogSegment(8);
    system.AttachLog(region, log);
    regions.push_back(region);
    logs.push_back(log);
  }
  for (int i = 0; i < kWorkers; ++i) {
    system.Activate(as, i);
  }
  par::ParallelEngine engine(&system, par::EngineConfig{});
  for (int i = 0; i < kWorkers; ++i) {
    system.TouchRegion(&system.cpu(i), regions[i]);
    VirtAddr base = bases[i];
    engine.AddWorker(logs[i], [base](Cpu& cpu, uint64_t step) {
      cpu.Write(base + 4 * (step % 4096), static_cast<uint32_t>(step));
      cpu.Compute(32);
      return step + 1 < kWrites;
    });
  }
  engine.Run();
  ThroughputPoint point;
  for (int i = 0; i < kWorkers; ++i) {
    LogReader reader(system.memory(), *logs[i]);
    point.records += reader.size();
    if (system.cpu(i).now() > point.makespan) {
      point.makespan = system.cpu(i).now();
    }
  }
  return point;
}

TEST(RaceCheckTest, DetectorOverheadWithinBound) {
  const ThroughputPoint off = RunScalingWorkload(/*racecheck=*/false);
  const ThroughputPoint on = RunScalingWorkload(/*racecheck=*/true);
  ASSERT_GT(off.records, 0u);
  ASSERT_GT(off.makespan, 0u);
  // The detector charges no simulated cycles, so the strong form holds:
  // identical records and identical makespan, i.e. exactly 1.0x in
  // records/sim-second — comfortably within the 2.5x budget (the budget
  // exists for future instrumentation that does charge cycles).
  EXPECT_EQ(on.records, off.records);
  EXPECT_EQ(on.makespan, off.makespan);
  const double off_rate = static_cast<double>(off.records) / static_cast<double>(off.makespan);
  const double on_rate = static_cast<double>(on.records) / static_cast<double>(on.makespan);
  EXPECT_GE(on_rate * 2.5, off_rate);
}

// --- shadow budget, filtering, misc API -----------------------------------

TEST(RaceCheckTest, ShadowBudgetEvictsLruWithoutReports) {
  LvmConfig config;
  config.num_cpus = 1;
  LvmSystem system(config);
  race::RaceConfig race_config;
  race_config.max_shadow_cells = 64;  // One cell per stripe: constant churn.
  race::RaceDetector* detector = system.EnableRaceDetection(race_config);

  StdSegment* segment = system.CreateSegment(8 * kPageSize);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.Activate(as, 0);

  for (uint32_t i = 0; i < 8 * kPageSize / 4; ++i) {
    system.cpu(0).Write(base + 4 * i, i);
  }
  EXPECT_GT(detector->shadow_evictions(), 0u);
  EXPECT_EQ(system.GetRaceReports().size(), 0u);
  EXPECT_TRUE(obs::ValidateJson(detector->ReportsJson()));
}

TEST(RaceCheckTest, LoggedOnlyFilterSkipsUnloggedAccesses) {
  LvmConfig config;
  config.num_cpus = 1;
  LvmSystem system(config);
  race::RaceConfig race_config;
  race_config.logged_only = true;
  race::RaceDetector* detector = system.EnableRaceDetection(race_config);

  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.Activate(as, 0);

  system.cpu(0).Write(base, 1);  // Unlogged region: filtered out.
  EXPECT_EQ(detector->accesses_observed(), 0u);

  LogSegment* log = system.CreateLogSegment(4);
  system.AttachLog(region, log);
  system.cpu(0).Write(base, 2);  // Now logged: observed.
  EXPECT_EQ(detector->accesses_observed(), 1u);
}

// No engine at all: a single host thread driving two simulated CPUs must
// still see their accesses as concurrent — CPU clocks start knowing only
// themselves, and only sync edges (here GuestSyncEvent) order them.
// Regression: an all-ones initial vector clock made CPUs' first epochs
// mutually covered, silently hiding every pre-sync race.
TEST(RaceCheckTest, SerialDrivingDetectsUnorderedWrites) {
  for (bool annotate : {false, true}) {
    SCOPED_TRACE(annotate ? "annotated" : "unannotated");
    LvmConfig config;
    config.num_cpus = 2;
    LvmSystem system(config);
    system.EnableRaceDetection();
    StdSegment* segment = system.CreateSegment(kPageSize);
    Region* region = system.CreateRegion(segment);
    AddressSpace* as = system.CreateAddressSpace();
    VirtAddr base = as->BindRegion(region);
    system.Activate(as, 0);
    system.Activate(as, 1);

    system.cpu(0).Write(base, 1);
    if (annotate) {
      system.GuestSyncEvent(0, LvmSystem::SyncOp::kRelease, 42);
      system.GuestSyncEvent(1, LvmSystem::SyncOp::kAcquire, 42);
    }
    system.cpu(1).Write(base, 2);
    EXPECT_EQ(system.GetRaceReports().size(), annotate ? 0u : 1u);
  }
}

TEST(RaceCheckTest, RaceMetricsAppearInSystemStats) {
  LvmConfig config;
  config.num_cpus = 1;
  LvmSystem system(config);
  system.EnableRaceDetection();
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.Activate(as, 0);
  system.cpu(0).Write(base, 1);
  system.cpu(0).Read(base);

  obs::Snapshot snapshot = system.metrics().TakeSnapshot();
  EXPECT_EQ(snapshot.counter("race.accesses_observed"), 2u);
  EXPECT_EQ(snapshot.counter("race.reports"), 0u);
}

}  // namespace
}  // namespace lvm
