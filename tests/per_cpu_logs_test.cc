// Tests of the per-processor log extension (Section 3.1.2): the logger
// uses the writing processor's id to select a log within a group, so a
// shared segment yields one clean stream per CPU instead of an interleaved
// mess.
#include <gtest/gtest.h>

#include <vector>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

class PerCpuLogsTest : public ::testing::Test {
 protected:
  static constexpr int kCpus = 3;

  PerCpuLogsTest() {
    LvmConfig config;
    config.num_cpus = kCpus;
    system_ = std::make_unique<LvmSystem>(config);
    segment_ = system_->CreateSegment(8 * kPageSize);
    region_ = system_->CreateRegion(segment_);
    as_ = system_->CreateAddressSpace();
    base_ = as_->BindRegion(region_);
    for (int i = 0; i < kCpus; ++i) {
      logs_.push_back(system_->CreateLogSegment());
      system_->Activate(as_, i);  // One shared address space on every CPU.
    }
    system_->AttachPerCpuLogs(region_, logs_);
  }

  std::unique_ptr<LvmSystem> system_;
  StdSegment* segment_ = nullptr;
  Region* region_ = nullptr;
  AddressSpace* as_ = nullptr;
  VirtAddr base_ = 0;
  std::vector<LogSegment*> logs_;
};

TEST_F(PerCpuLogsTest, WritesSortedByProcessor) {
  // Interleaved writes from three CPUs to the shared region.
  for (uint32_t round = 0; round < 100; ++round) {
    for (int cpu_id = 0; cpu_id < kCpus; ++cpu_id) {
      system_->cpu(cpu_id).Write(base_ + 4 * (round % 512),
                                 1000u * static_cast<uint32_t>(cpu_id) + round);
      system_->cpu(cpu_id).Compute(200);
    }
  }
  for (int cpu_id = 0; cpu_id < kCpus; ++cpu_id) {
    system_->SyncLog(&system_->cpu(cpu_id), logs_[static_cast<size_t>(cpu_id)]);
    LogReader reader(system_->memory(), *logs_[static_cast<size_t>(cpu_id)]);
    ASSERT_EQ(reader.size(), 100u) << "cpu " << cpu_id;
    for (uint32_t round = 0; round < 100; ++round) {
      EXPECT_EQ(reader.At(round).value, 1000u * static_cast<uint32_t>(cpu_id) + round);
    }
  }
}

TEST_F(PerCpuLogsTest, GroupSharesOnePageMappingEntry) {
  // One write from each CPU to the same page: the single page-mapping
  // entry fans records out by processor id.
  system_->cpu(0).Write(base_, 10);
  system_->cpu(1).Write(base_ + 4, 11);
  system_->cpu(2).Write(base_ + 8, 12);
  for (int cpu_id = 0; cpu_id < kCpus; ++cpu_id) {
    system_->SyncLog(&system_->cpu(cpu_id), logs_[static_cast<size_t>(cpu_id)]);
    LogReader reader(system_->memory(), *logs_[static_cast<size_t>(cpu_id)]);
    ASSERT_EQ(reader.size(), 1u);
    EXPECT_EQ(reader.At(0).value, 10u + static_cast<uint32_t>(cpu_id));
  }
}

TEST_F(PerCpuLogsTest, PerLogPageCrossingIndependent) {
  // Fill CPU 1's log past a page boundary; the other logs stay small.
  constexpr uint32_t kRecords = kPageSize / kLogRecordSize + 10;
  for (uint32_t i = 0; i < kRecords; ++i) {
    system_->cpu(1).Write(base_ + 4 * (i % 512), i);
    system_->cpu(1).Compute(300);
  }
  system_->cpu(0).Write(base_ + 100, 7);
  for (int cpu_id = 0; cpu_id < kCpus; ++cpu_id) {
    system_->SyncLog(&system_->cpu(cpu_id), logs_[static_cast<size_t>(cpu_id)]);
  }
  EXPECT_EQ(LogReader(system_->memory(), *logs_[1]).size(), kRecords);
  EXPECT_EQ(LogReader(system_->memory(), *logs_[0]).size(), 1u);
  EXPECT_EQ(LogReader(system_->memory(), *logs_[2]).size(), 0u);
}

TEST(PerCpuLogsConfigTest, RejectsWrongGroupSize) {
  LvmConfig config;
  config.num_cpus = 2;
  LvmSystem system(config);
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  std::vector<LogSegment*> logs = {system.CreateLogSegment()};
  EXPECT_DEATH(system.AttachPerCpuLogs(region, logs), "one log per processor");
}

TEST(PerCpuLogsConfigTest, RejectedUnderOnChipLogger) {
  LvmConfig config;
  config.logger_kind = LoggerKind::kOnChip;
  config.num_cpus = 2;
  LvmSystem system(config);
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  std::vector<LogSegment*> logs = {system.CreateLogSegment(), system.CreateLogSegment()};
  EXPECT_DEATH(system.AttachPerCpuLogs(region, logs), "bus-logger extension");
}

}  // namespace
}  // namespace lvm
