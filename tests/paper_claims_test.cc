// Regression locks on the paper's quantitative claims: cheap end-to-end
// checks that the reproduced shapes of Tables 2-3 and Figures 7-12 do not
// drift as the code evolves. Each test states the claim it pins.
#include <gtest/gtest.h>

#include <memory>

#include "src/lvm/lvm_system.h"
#include "src/rvm/ram_disk.h"
#include "src/rvm/rlvm.h"
#include "src/rvm/rvm.h"
#include "src/tpc/tpca.h"

namespace lvm {
namespace {

// A logged setup helper shared by the claims.
struct Rig {
  explicit Rig(LvmSystem* system, uint32_t size = 16 * kPageSize) : sys(system) {
    segment = system->CreateSegment(size);
    region = system->CreateRegion(segment);
    log = system->CreateLogSegment(64);
    as = system->CreateAddressSpace();
    base = as->BindRegion(region);
    system->AttachLog(region, log);
    system->Activate(as);
    system->TouchRegion(&system->cpu(), region);
    system->cpu().DrainWriteBuffer();
  }
  LvmSystem* sys;
  StdSegment* segment;
  Region* region;
  LogSegment* log;
  AddressSpace* as;
  VirtAddr base;
};

TEST(PaperClaimsTest, Table2MachineOperations) {
  // "Word write-through 6 cycles (5 bus)."
  LvmSystem system;
  Rig rig(&system);
  Cpu& cpu = system.cpu();
  cpu.Compute(10000);
  Cycles t0 = cpu.now();
  uint64_t bus0 = system.machine().bus().busy_cycles();
  cpu.Write(rig.base, 1);
  cpu.DrainWriteBuffer();
  EXPECT_EQ(cpu.now() - t0, 6u);
  EXPECT_EQ(system.machine().bus().busy_cycles() - bus0, 5u);
  // "Cache block write 9 cycles."
  system.FlushSegment(&cpu, rig.segment);
  cpu.Write(rig.base + 256, 2);
  cpu.DrainWriteBuffer();
  t0 = cpu.now();
  system.FlushSegment(&cpu, rig.segment);
  EXPECT_EQ(cpu.now() - t0, 9u);
}

TEST(PaperClaimsTest, Section453OverloadBoundary) {
  // "Overload is avoided as long as there is no more than one logged write
  // per 27 compute cycles on average."
  auto overloads_at = [](uint32_t compute) {
    LvmSystem system;
    Rig rig(&system);
    for (uint32_t i = 0; i < 5000; ++i) {
      system.cpu().Write(rig.base + 4 * (i % 1024), i);
      system.cpu().Compute(compute);
    }
    return system.overload_suspensions();
  };
  EXPECT_GT(overloads_at(5), 0u);
  EXPECT_EQ(overloads_at(30), 0u);
}

TEST(PaperClaimsTest, Section453OverloadPenaltyOver30k) {
  // "Overloading the logger is so expensive (more than 30,000 cycles)..."
  LvmSystem system;
  Rig rig(&system);
  Cpu& cpu = system.cpu();
  uint64_t suspensions_before = system.overload_suspensions();
  Cycles t0 = cpu.now();
  while (system.overload_suspensions() == suspensions_before) {
    cpu.Write(rig.base + 4 * (static_cast<uint32_t>(cpu.now()) % 1024), 1);
  }
  EXPECT_GT(cpu.now() - t0, 30000u);
}

TEST(PaperClaimsTest, Figure9CrossoverNearTwoThirds) {
  // "resetDeferredCopy() performs better than a raw copy if less than
  // about two-thirds of the segment is dirty."
  auto costs_at = [](double dirty_fraction, Cycles* reset_out, Cycles* copy_out) {
    LvmSystem system;
    constexpr uint32_t kSize = 64 * kPageSize;
    StdSegment* checkpoint = system.CreateSegment(kSize);
    StdSegment* working = system.CreateSegment(kSize);
    working->SetSourceSegment(checkpoint);
    Region* region = system.CreateRegion(working);
    AddressSpace* as = system.CreateAddressSpace();
    VirtAddr base = as->BindRegion(region);
    system.Activate(as);
    system.TouchRegion(&system.cpu(), region);
    Cpu& cpu = system.cpu();
    auto dirty_pages = static_cast<uint32_t>(dirty_fraction * 64);
    for (uint32_t p = 0; p < dirty_pages; ++p) {
      for (uint32_t off = 0; off < kPageSize; off += 4) {
        cpu.Write(base + p * kPageSize + off, off);
      }
    }
    Cycles t0 = cpu.now();
    system.ResetDeferredCopy(&cpu, as, base, base + kSize);
    *reset_out = cpu.now() - t0;
    t0 = cpu.now();
    system.CopySegment(&cpu, working, checkpoint);
    *copy_out = cpu.now() - t0;
  };
  Cycles reset = 0;
  Cycles copy = 0;
  costs_at(0.5, &reset, &copy);
  EXPECT_LT(reset, copy);  // Below 2/3: reset wins.
  costs_at(0.8, &reset, &copy);
  EXPECT_GT(reset, copy);  // Above 2/3: copy wins.
}

TEST(PaperClaimsTest, Table3SingleWriteGapIsOrdersOfMagnitude) {
  auto measure = [](RecoverableStore* store, Cpu* cpu) {
    VirtAddr a = store->data_base();
    store->Begin(cpu);
    store->SetRange(cpu, a, 4);
    store->Write(cpu, a, 1);
    cpu->Compute(2000);
    Cycles t0 = cpu->now();
    store->SetRange(cpu, a + 8, 4);
    store->Write(cpu, a + 8, 2);
    cpu->DrainWriteBuffer();
    Cycles cost = cpu->now() - t0;
    store->Commit(cpu);
    return cost;
  };
  LvmSystem sys1;
  RamDisk d1;
  AddressSpace* as1 = sys1.CreateAddressSpace();
  Rvm rvm(&sys1, as1, &d1, 1u << 20);
  sys1.Activate(as1);
  Cycles rvm_cost = measure(&rvm, &sys1.cpu());

  LvmSystem sys2;
  RamDisk d2;
  AddressSpace* as2 = sys2.CreateAddressSpace();
  Rlvm rlvm(&sys2, as2, &d2, 1u << 20);
  sys2.Activate(as2);
  Cycles rlvm_cost = measure(&rlvm, &sys2.cpu());

  // Paper: 3515 vs 16 cycles (~220x). We pin "> 100x" and the RVM cost
  // band around the paper's figure.
  EXPECT_GT(rvm_cost, 3000u);
  EXPECT_LT(rvm_cost, 4000u);
  EXPECT_GT(rvm_cost, 100 * rlvm_cost);
}

TEST(PaperClaimsTest, Table3TpcAThroughputBand) {
  // Paper: 418 vs 552 trans/sec — RLVM wins by ~1.3x, not by the
  // single-write ratio, because commit/truncate dominate.
  auto tps = [](RecoverableStore* store, LvmSystem* system) {
    TpcAConfig config;
    config.accounts = 2000;
    config.history_slots = 1024;
    TpcA tpc(store, config);
    Cpu& cpu = system->cpu();
    tpc.Setup(&cpu);
    Cycles t0 = cpu.now();
    constexpr int kTx = 500;
    for (int i = 0; i < kTx; ++i) {
      tpc.RunTransaction(&cpu);
    }
    return 25e6 * kTx / static_cast<double>(cpu.now() - t0);
  };
  LvmSystem sys1;
  RamDisk d1;
  AddressSpace* as1 = sys1.CreateAddressSpace();
  Rvm rvm(&sys1, as1, &d1, 2u << 20);
  sys1.Activate(as1);
  double rvm_tps = tps(&rvm, &sys1);

  LvmSystem sys2;
  RamDisk d2;
  AddressSpace* as2 = sys2.CreateAddressSpace();
  Rlvm rlvm(&sys2, as2, &d2, 2u << 20);
  sys2.Activate(as2);
  double rlvm_tps = tps(&rlvm, &sys2);

  EXPECT_NEAR(rvm_tps, 418.0, 60.0);
  EXPECT_NEAR(rlvm_tps, 552.0, 60.0);
  double speedup = rlvm_tps / rvm_tps;
  EXPECT_GT(speedup, 1.15);
  EXPECT_LT(speedup, 1.6);
}

TEST(PaperClaimsTest, Figure10FlatRegionGapGrowsWithClusterSize) {
  // "The cost of the write-through increases with the size of write burst."
  auto cycles_per_write = [](bool logged, uint32_t cluster) {
    LvmSystem system;
    Rig rig(&system, 64 * kPageSize);
    Cpu& cpu = system.cpu();
    Cycles t0 = cpu.now();
    uint32_t addr = 0;
    constexpr uint32_t kIters = 2000;
    Region* unlogged_region = nullptr;
    VirtAddr base = rig.base;
    if (!logged) {
      StdSegment* plain = system.CreateSegment(64 * kPageSize);
      unlogged_region = system.CreateRegion(plain);
      base = rig.as->BindRegion(unlogged_region);
      system.TouchRegion(&cpu, unlogged_region);
      t0 = cpu.now();
    }
    for (uint32_t i = 0; i < kIters; ++i) {
      cpu.Compute(400);
      for (uint32_t w = 0; w < cluster; ++w) {
        cpu.Write(base + addr, i);
        addr = (addr + 4) % (64 * kPageSize);
      }
    }
    cpu.DrainWriteBuffer();
    return static_cast<double>(cpu.now() - t0 - kIters * 400) / (kIters * cluster);
  };
  double gap2 = cycles_per_write(true, 2) - cycles_per_write(false, 2);
  double gap8 = cycles_per_write(true, 8) - cycles_per_write(false, 8);
  EXPECT_GT(gap2, 0.0);
  EXPECT_GT(gap8, gap2);
}

}  // namespace
}  // namespace lvm
