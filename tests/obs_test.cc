// Tests of the observability layer: metrics registry, trace recorder, JSON
// helpers — plus the allocation-freedom guarantee on the logger write path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "src/logger/hardware_logger.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/bus.h"
#include "src/sim/phys_mem.h"

// Global allocation counter for the zero-allocation tests. Replacing the
// global operators is the only way to observe allocations made inside the
// library; every other test in this binary simply pays one extra increment
// per allocation. noinline keeps gcc from inlining the malloc/free pair
// into new/delete sites, which trips -Wmismatched-new-delete.
static uint64_t g_allocation_count = 0;

__attribute__((noinline)) void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

__attribute__((noinline)) void* operator new[](std::size_t size) { return operator new(size); }

__attribute__((noinline)) void operator delete(void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete[](void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace lvm {
namespace {

// --- Histogram ---

TEST(HistogramTest, BucketEdges) {
  // Bucket 0 holds zeros; bucket i (i >= 1) holds [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(obs::Histogram::BucketIndex((1u << 30) - 1), 30u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1u << 31), 32u);
  // Values beyond the 32-bit cycle range clamp into the top bucket.
  EXPECT_EQ(obs::Histogram::BucketIndex(uint64_t{1} << 40), obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(UINT64_MAX), obs::Histogram::kBuckets - 1);
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  obs::Histogram h;
  h.Record(0);
  h.Record(5);
  h.Record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 8u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);  // The zero.
  EXPECT_EQ(h.bucket(2), 1u);  // 3 in [2,4).
  EXPECT_EQ(h.bucket(3), 1u);  // 5 in [4,8).
}

// --- TraceRecorder ---

TEST(TraceRecorderTest, DropsNewEventsWhenFull) {
  obs::TraceRecorder trace;
  EXPECT_FALSE(trace.enabled());
  trace.Enable(4);
  EXPECT_TRUE(trace.enabled());
  for (uint32_t i = 0; i < 6; ++i) {
    trace.Instant("test", "event", 0, i * 10);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped_events(), 2u);
  // The prefix is kept: the first four events survive.
  EXPECT_EQ(trace.event(0).ts, 0u);
  EXPECT_EQ(trace.event(3).ts, 30u);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped_events(), 0u);
}

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  obs::TraceRecorder trace;
  trace.Instant("test", "event", 0, 1);
  trace.Complete("test", "span", 0, 1, 2);
  trace.CounterValue("test", "gauge", 0, 1, 7);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped_events(), 0u);
}

TEST(TraceRecorderTest, ChromeTraceJsonIsWellFormed) {
  obs::TraceRecorder trace;
  trace.Enable(16);
  trace.SetThreadName(0, "cpu0");
  trace.SetThreadName(64, "bus logger");
  // 25 cycles = 1 microsecond at the 25 MHz clock.
  trace.Complete("logger", "overload_drain", 64, 25, 100, "fifo_entries", 12);
  trace.Instant("logger", "record", 64, 50, "paddr", 0x1000);
  trace.CounterValue("logger", "fifo_occupancy", 64, 75, 3);

  std::string json = trace.ChromeTraceJson();
  EXPECT_TRUE(obs::ValidateJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);  // 25 cycles.
  EXPECT_NE(json.find("\"dur\":3.000"), std::string::npos);  // 75 cycles.
  EXPECT_NE(json.find("\"bus logger\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
  EXPECT_NE(json.find("\"fifo_entries\":12"), std::string::npos);
}

TEST(TraceRecorderTest, ScopedSpanRecordsOnDestruction) {
  obs::TraceRecorder trace;
  trace.Enable(4);
  Cycles now = 100;
  {
    obs::ScopedSpan span(&trace, "test", "work", 2, [&now] { return now; });
    span.SetArg("items", 9);
    now = 300;
  }
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.event(0).phase, 'X');
  EXPECT_EQ(trace.event(0).ts, 100u);
  EXPECT_EQ(trace.event(0).dur, 200u);
  EXPECT_EQ(trace.event(0).tid, 2u);
  EXPECT_EQ(trace.event(0).arg1, 9u);
}

// --- JSON helpers ---

TEST(JsonTest, ValidateJsonAcceptsValidDocuments) {
  EXPECT_TRUE(obs::ValidateJson("{}"));
  EXPECT_TRUE(obs::ValidateJson("[]"));
  EXPECT_TRUE(obs::ValidateJson("[1,2.5,-3e7,\"x\",null,true,false]"));
  EXPECT_TRUE(obs::ValidateJson("{\"a\":{\"b\":[0]}}"));
  EXPECT_TRUE(obs::ValidateJson("  {\"a\":1}  \n"));  // Surrounding whitespace.
}

TEST(JsonTest, ValidateJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ValidateJson(""));
  EXPECT_FALSE(obs::ValidateJson("{"));
  EXPECT_FALSE(obs::ValidateJson("[1,]"));
  EXPECT_FALSE(obs::ValidateJson("{'a':1}"));
  EXPECT_FALSE(obs::ValidateJson("{\"a\":01}"));  // Leading zero.
  EXPECT_FALSE(obs::ValidateJson("{} trailing"));
  EXPECT_FALSE(obs::ValidateJson("{\"a\"}"));
}

TEST(JsonTest, StringEscaping) {
  std::string out;
  obs::AppendJsonString(&out, "a\"b\\c\n\td");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\td\"");
  EXPECT_TRUE(obs::ValidateJson(out));
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, SnapshotDeltaRoundTrip) {
  obs::MetricsRegistry registry;
  obs::Counter* requests = registry.counter("requests");
  obs::Gauge* depth = registry.gauge("depth");
  obs::Histogram* latency = registry.histogram("latency");

  requests->Add(10);
  depth->Set(3);
  latency->Record(4);
  latency->Record(100);
  obs::Snapshot before = registry.TakeSnapshot();

  requests->Add(5);
  depth->Set(7);
  latency->Record(2);
  obs::Snapshot after = registry.TakeSnapshot();

  EXPECT_EQ(after.counter("requests"), 15u);
  EXPECT_EQ(after.counter("no_such_metric"), 0u);  // Absent names read zero.

  obs::Snapshot delta = after.Delta(before);
  EXPECT_EQ(delta.counter("requests"), 5u);
  EXPECT_EQ(delta.gauge("depth"), 7);  // Gauges keep the later value.
  const obs::HistogramSnapshot* hist = delta.histogram("latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_EQ(hist->sum, 2u);
  EXPECT_EQ(hist->buckets[obs::Histogram::BucketIndex(2)], 1u);
}

TEST(MetricsRegistryTest, ExternalAndCallbackMetrics) {
  obs::MetricsRegistry registry;
  obs::Counter component_counter;  // Lives in a "component", not the registry.
  registry.RegisterCounter("component.events", &component_counter);
  uint64_t derived = 42;
  registry.RegisterCallback("derived.value", [&derived] { return derived; });

  component_counter.Add(7);
  obs::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counter("component.events"), 7u);
  EXPECT_EQ(snap.counter("derived.value"), 42u);

  derived = 50;
  component_counter.Increment();
  obs::Snapshot snap2 = registry.TakeSnapshot();
  EXPECT_EQ(snap2.Delta(snap).counter("component.events"), 1u);
  EXPECT_EQ(snap2.Delta(snap).counter("derived.value"), 8u);
}

// --- Allocation freedom ---

TEST(ObsAllocationTest, EnabledRecorderWritePathDoesNotAllocate) {
  obs::TraceRecorder trace;
  trace.Enable(1024);  // Pre-reserves the full event budget.
  uint64_t before = g_allocation_count;
  for (uint32_t i = 0; i < 200; ++i) {
    trace.Instant("test", "event", 0, i);
    trace.Complete("test", "span", 0, i, i + 5, "arg", i);
    trace.CounterValue("test", "gauge", 0, i, i);
  }
  EXPECT_EQ(g_allocation_count, before);
}

TEST(ObsAllocationTest, LoggerWritePathDoesNotAllocateWithTracingOff) {
  // The ISSUE acceptance bar: with tracing disabled, a logged bus write
  // through the hardware logger performs zero heap allocations.
  MachineParams params;
  PhysicalMemory memory(1u << 20);
  Bus bus;
  HardwareLogger logger(&params, &memory, &bus);
  uint32_t index = 0;
  logger.log_table().Allocate(LogMode::kNormal, &index);
  logger.log_table().SetTail(index, 0x40000);
  logger.page_mapping_table().Load(0x10000, static_cast<uint16_t>(index));

  // Warm-up: any lazy initialization happens here.
  logger.OnBusWrite(0x10000, 1, 4, true, 0, 0);
  logger.OnBusWrite(0x10004, 2, 4, true, 1000, 0);

  uint64_t before = g_allocation_count;
  // Spaced writes: the FIFO drains between them, no overload, and the tail
  // stays inside its first page (well under kPageSize/16 records).
  for (uint32_t i = 0; i < 100; ++i) {
    logger.OnBusWrite(0x10000 + 4 * (i % 1024), i, 4, true, 2000 + i * 1000, 0);
  }
  logger.SyncDrain(1000000);
  EXPECT_EQ(g_allocation_count, before);
  EXPECT_EQ(logger.records_logged(), 102u);
}

}  // namespace
}  // namespace lvm
