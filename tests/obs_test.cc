// Tests of the observability layer: metrics registry, trace recorder, JSON
// helpers — plus the allocation-freedom guarantee on the logger write path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "src/logger/hardware_logger.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/bus.h"
#include "src/sim/phys_mem.h"

// Global allocation counter for the zero-allocation tests. Replacing the
// global operators is the only way to observe allocations made inside the
// library; every other test in this binary simply pays one extra increment
// per allocation. noinline keeps gcc from inlining the malloc/free pair
// into new/delete sites, which trips -Wmismatched-new-delete.
static uint64_t g_allocation_count = 0;

__attribute__((noinline)) void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

__attribute__((noinline)) void* operator new[](std::size_t size) { return operator new(size); }

__attribute__((noinline)) void operator delete(void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete[](void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace lvm {
namespace {

// --- Histogram ---

TEST(HistogramTest, BucketEdges) {
  // Bucket 0 holds zeros; bucket i (i >= 1) holds [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(obs::Histogram::BucketIndex((1u << 30) - 1), 30u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1u << 31), 32u);
  // Values beyond the 32-bit cycle range clamp into the top bucket.
  EXPECT_EQ(obs::Histogram::BucketIndex(uint64_t{1} << 40), obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(UINT64_MAX), obs::Histogram::kBuckets - 1);
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  obs::Histogram h;
  h.Record(0);
  h.Record(5);
  h.Record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 8u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);  // The zero.
  EXPECT_EQ(h.bucket(2), 1u);  // 3 in [2,4).
  EXPECT_EQ(h.bucket(3), 1u);  // 5 in [4,8).
}

// --- TraceRecorder ---

TEST(TraceRecorderTest, DropsNewEventsWhenFull) {
  obs::TraceRecorder trace;
  EXPECT_FALSE(trace.enabled());
  trace.Enable(4);
  EXPECT_TRUE(trace.enabled());
  for (uint32_t i = 0; i < 6; ++i) {
    trace.Instant("test", "event", 0, i * 10);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped_events(), 2u);
  // The prefix is kept: the first four events survive.
  EXPECT_EQ(trace.event(0).ts, 0u);
  EXPECT_EQ(trace.event(3).ts, 30u);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped_events(), 0u);
}

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  obs::TraceRecorder trace;
  trace.Instant("test", "event", 0, 1);
  trace.Complete("test", "span", 0, 1, 2);
  trace.CounterValue("test", "gauge", 0, 1, 7);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped_events(), 0u);
}

TEST(TraceRecorderTest, ChromeTraceJsonIsWellFormed) {
  obs::TraceRecorder trace;
  trace.Enable(16);
  trace.SetThreadName(0, "cpu0");
  trace.SetThreadName(64, "bus logger");
  // 25 cycles = 1 microsecond at the 25 MHz clock.
  trace.Complete("logger", "overload_drain", 64, 25, 100, "fifo_entries", 12);
  trace.Instant("logger", "record", 64, 50, "paddr", 0x1000);
  trace.CounterValue("logger", "fifo_occupancy", 64, 75, 3);

  std::string json = trace.ChromeTraceJson();
  EXPECT_TRUE(obs::ValidateJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);  // 25 cycles.
  EXPECT_NE(json.find("\"dur\":3.000"), std::string::npos);  // 75 cycles.
  EXPECT_NE(json.find("\"bus logger\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
  EXPECT_NE(json.find("\"fifo_entries\":12"), std::string::npos);
}

TEST(TraceRecorderTest, ScopedSpanRecordsOnDestruction) {
  obs::TraceRecorder trace;
  trace.Enable(4);
  Cycles now = 100;
  {
    obs::ScopedSpan span(&trace, "test", "work", 2, [&now] { return now; });
    span.SetArg("items", 9);
    now = 300;
  }
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.event(0).phase, 'X');
  EXPECT_EQ(trace.event(0).ts, 100u);
  EXPECT_EQ(trace.event(0).dur, 200u);
  EXPECT_EQ(trace.event(0).tid, 2u);
  EXPECT_EQ(trace.event(0).arg1, 9u);
}

// --- JSON helpers ---

TEST(JsonTest, ValidateJsonAcceptsValidDocuments) {
  EXPECT_TRUE(obs::ValidateJson("{}"));
  EXPECT_TRUE(obs::ValidateJson("[]"));
  EXPECT_TRUE(obs::ValidateJson("[1,2.5,-3e7,\"x\",null,true,false]"));
  EXPECT_TRUE(obs::ValidateJson("{\"a\":{\"b\":[0]}}"));
  EXPECT_TRUE(obs::ValidateJson("  {\"a\":1}  \n"));  // Surrounding whitespace.
}

TEST(JsonTest, ValidateJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ValidateJson(""));
  EXPECT_FALSE(obs::ValidateJson("{"));
  EXPECT_FALSE(obs::ValidateJson("[1,]"));
  EXPECT_FALSE(obs::ValidateJson("{'a':1}"));
  EXPECT_FALSE(obs::ValidateJson("{\"a\":01}"));  // Leading zero.
  EXPECT_FALSE(obs::ValidateJson("{} trailing"));
  EXPECT_FALSE(obs::ValidateJson("{\"a\"}"));
}

TEST(JsonTest, StringEscaping) {
  std::string out;
  obs::AppendJsonString(&out, "a\"b\\c\n\td");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\td\"");
  EXPECT_TRUE(obs::ValidateJson(out));
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, SnapshotDeltaRoundTrip) {
  obs::MetricsRegistry registry;
  obs::Counter* requests = registry.counter("requests");
  obs::Gauge* depth = registry.gauge("depth");
  obs::Histogram* latency = registry.histogram("latency");

  requests->Add(10);
  depth->Set(3);
  latency->Record(4);
  latency->Record(100);
  obs::Snapshot before = registry.TakeSnapshot();

  requests->Add(5);
  depth->Set(7);
  latency->Record(2);
  obs::Snapshot after = registry.TakeSnapshot();

  EXPECT_EQ(after.counter("requests"), 15u);
  EXPECT_EQ(after.counter("no_such_metric"), 0u);  // Absent names read zero.

  obs::Snapshot delta = after.Delta(before);
  EXPECT_EQ(delta.counter("requests"), 5u);
  EXPECT_EQ(delta.gauge("depth"), 7);  // Gauges keep the later value.
  const obs::HistogramSnapshot* hist = delta.histogram("latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_EQ(hist->sum, 2u);
  EXPECT_EQ(hist->buckets[obs::Histogram::BucketIndex(2)], 1u);
}

TEST(MetricsRegistryTest, ExternalAndCallbackMetrics) {
  obs::MetricsRegistry registry;
  obs::Counter component_counter;  // Lives in a "component", not the registry.
  registry.RegisterCounter("component.events", &component_counter);
  uint64_t derived = 42;
  registry.RegisterCallback("derived.value", [&derived] { return derived; });

  component_counter.Add(7);
  obs::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counter("component.events"), 7u);
  EXPECT_EQ(snap.counter("derived.value"), 42u);

  derived = 50;
  component_counter.Increment();
  obs::Snapshot snap2 = registry.TakeSnapshot();
  EXPECT_EQ(snap2.Delta(snap).counter("component.events"), 1u);
  EXPECT_EQ(snap2.Delta(snap).counter("derived.value"), 8u);
}

TEST(MetricsRegistryTest, DeltaClampsWhenCounterResets) {
  // A counter that went backwards (component reset, restarted run) must
  // delta to 0, not wrap to a huge unsigned value.
  obs::MetricsRegistry registry;
  obs::Counter component_counter;
  registry.RegisterCounter("component.events", &component_counter);
  component_counter.Add(100);
  obs::Snapshot before = registry.TakeSnapshot();
  component_counter.Reset();
  component_counter.Add(30);
  obs::Snapshot after = registry.TakeSnapshot();
  EXPECT_EQ(after.Delta(before).counter("component.events"), 0u);
}

TEST(MetricsRegistryTest, DeltaHistogramClampsCountAndSum) {
  obs::MetricsRegistry registry;
  obs::Histogram* latency = registry.histogram("latency");
  latency->Record(8);
  latency->Record(8);
  obs::Snapshot earlier = registry.TakeSnapshot();
  latency->Record(1);
  obs::Snapshot later = registry.TakeSnapshot();
  // Deltas taken the wrong way round (before from a later point) clamp at
  // zero instead of wrapping.
  obs::Snapshot reversed = earlier.Delta(later);
  const obs::HistogramSnapshot* hist = reversed.histogram("latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 0u);
  EXPECT_EQ(hist->sum, 0u);
  obs::Snapshot forward_delta = later.Delta(earlier);
  const obs::HistogramSnapshot* forward = forward_delta.histogram("latency");
  ASSERT_NE(forward, nullptr);
  EXPECT_EQ(forward->count, 1u);
  EXPECT_EQ(forward->sum, 1u);
}

TEST(MetricsRegistryTest, DeltaNearUint64MaxDoesNotOverflow) {
  obs::MetricsRegistry registry;
  obs::Counter big;
  registry.RegisterCounter("big", &big);
  big.Add(UINT64_MAX - 10);
  obs::Snapshot before = registry.TakeSnapshot();
  big.Add(7);
  obs::Snapshot after = registry.TakeSnapshot();
  EXPECT_EQ(after.Delta(before).counter("big"), 7u);
  EXPECT_EQ(before.Delta(after).counter("big"), 0u);  // Reversed: clamp, no wrap.
}

// --- HistogramSnapshot::Percentile ---

// Records into a registry histogram and returns its snapshot.
obs::HistogramSnapshot Snap(const std::vector<uint64_t>& values) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.histogram("h");
  for (uint64_t v : values) {
    hist->Record(v);
  }
  obs::Snapshot registry_snap = registry.TakeSnapshot();
  const obs::HistogramSnapshot* snap = registry_snap.histogram("h");
  EXPECT_NE(snap, nullptr);
  return *snap;
}

TEST(HistogramPercentileTest, EmptyHistogramReturnsZero) {
  obs::HistogramSnapshot snap = Snap({});
  EXPECT_EQ(snap.Percentile(0), 0u);
  EXPECT_EQ(snap.Percentile(50), 0u);
  EXPECT_EQ(snap.Percentile(100), 0u);
}

TEST(HistogramPercentileTest, SingleBucketClampsToObservedRange) {
  // One sample, alone in bucket [4, 8): every percentile is that sample —
  // min == max == 5 beats the bucket's upper bound of 7.
  obs::HistogramSnapshot snap = Snap({5});
  EXPECT_EQ(snap.Percentile(0), 5u);
  EXPECT_EQ(snap.Percentile(50), 5u);
  EXPECT_EQ(snap.Percentile(99), 5u);
  EXPECT_EQ(snap.Percentile(100), 5u);
}

TEST(HistogramPercentileTest, RanksSelectBuckets) {
  std::vector<uint64_t> values(90, 1);       // Bucket [1, 2).
  values.insert(values.end(), 10, 1000);     // Bucket [512, 1024).
  obs::HistogramSnapshot snap = Snap(values);
  EXPECT_EQ(snap.Percentile(50), 1u);
  EXPECT_EQ(snap.Percentile(90), 1u);     // Rank 90 is the last small sample.
  EXPECT_EQ(snap.Percentile(99), 1000u);  // Upper bound clamped to max.
  EXPECT_LE(snap.Percentile(95), 1000u);
  EXPECT_EQ(snap.Percentile(-5), snap.min);
  EXPECT_EQ(snap.Percentile(250), snap.max);
}

TEST(HistogramPercentileTest, SaturatingValuesStayInTopBucket) {
  // Upper bounds saturate instead of overflowing; clamped to observed max.
  obs::HistogramSnapshot snap = Snap({UINT64_MAX, uint64_t{1} << 40});
  EXPECT_EQ(snap.Percentile(50), uint64_t{1} << 40);
  EXPECT_EQ(snap.Percentile(100), UINT64_MAX);
}

// --- JsonValue DOM parser ---

TEST(JsonDomTest, ParsesScalarsArraysAndObjects) {
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(
      "{\"n\":null,\"b\":true,\"i\":42,\"f\":2.5,\"neg\":-7,\"s\":\"hi\","
      "\"a\":[1,2,3],\"o\":{\"k\":\"v\"}}",
      &doc, &error))
      << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.Find("n") != nullptr && doc.Find("n")->is_null());
  EXPECT_EQ(doc.GetBool("b", false), true);
  EXPECT_EQ(doc.GetUint64("i", 0), 42u);
  EXPECT_EQ(doc.GetDouble("f", 0), 2.5);
  EXPECT_EQ(doc.GetInt64("neg", 0), -7);
  EXPECT_EQ(doc.GetString("s", ""), "hi");
  const obs::JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->size(), 3u);
  EXPECT_EQ(a->Items()[2].AsUint64(0), 3u);
  const obs::JsonValue* o = doc.Find("o");
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->GetString("k", ""), "v");
  EXPECT_EQ(doc.Find("missing"), nullptr);
  EXPECT_EQ(doc.GetUint64("missing", 9), 9u);
}

TEST(JsonDomTest, RejectsWhatTheAcceptorRejects) {
  obs::JsonValue doc;
  std::string error;
  EXPECT_FALSE(obs::ParseJson("", &doc, &error));
  EXPECT_FALSE(obs::ParseJson("[1,]", &doc, &error));
  EXPECT_FALSE(obs::ParseJson("{\"a\":01}", &doc, &error));
  EXPECT_FALSE(obs::ParseJson("{} x", &doc, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonDomTest, DecodesEscapes) {
  obs::JsonValue doc;
  ASSERT_TRUE(obs::ParseJson("[\"a\\\"b\\\\c\\n\\u0041\"]", &doc));
  ASSERT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.Items()[0].AsString(), "a\"b\\c\nA");
}

TEST(JsonDomTest, RoundTripsWriterOutput) {
  // What AppendJsonString/JsonNumber emit, ParseJson reads back.
  std::string out = "{";
  obs::AppendJsonString(&out, "key with \"quotes\"\n");
  out += ":";
  out += obs::JsonNumber(uint64_t{1234567890123});
  out += "}";
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(out, &doc, &error)) << error;
  EXPECT_EQ(doc.GetUint64("key with \"quotes\"\n", 0), 1234567890123u);
}

// --- TraceRecorder metrics export ---

TEST(TraceRecorderTest, RegistersDropAndRecordCountersAsMetrics) {
  obs::MetricsRegistry registry;
  obs::TraceRecorder trace;
  trace.RegisterMetrics(&registry);
  trace.Enable(4);
  for (uint32_t i = 0; i < 10; ++i) {
    trace.Instant("cat", "x", 0, i);
  }
  obs::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counter("trace.events_recorded"), 4u);
  EXPECT_EQ(snap.counter("trace.events_dropped"), 6u);
}

// --- Allocation freedom ---

TEST(ObsAllocationTest, EnabledRecorderWritePathDoesNotAllocate) {
  obs::TraceRecorder trace;
  trace.Enable(1024);  // Pre-reserves the full event budget.
  uint64_t before = g_allocation_count;
  for (uint32_t i = 0; i < 200; ++i) {
    trace.Instant("test", "event", 0, i);
    trace.Complete("test", "span", 0, i, i + 5, "arg", i);
    trace.CounterValue("test", "gauge", 0, i, i);
  }
  EXPECT_EQ(g_allocation_count, before);
}

TEST(ObsAllocationTest, LoggerWritePathDoesNotAllocateWithTracingOff) {
  // The ISSUE acceptance bar: with tracing disabled, a logged bus write
  // through the hardware logger performs zero heap allocations.
  MachineParams params;
  PhysicalMemory memory(1u << 20);
  Bus bus;
  HardwareLogger logger(&params, &memory, &bus);
  uint32_t index = 0;
  logger.log_table().Allocate(LogMode::kNormal, &index);
  logger.log_table().SetTail(index, 0x40000);
  logger.page_mapping_table().Load(0x10000, static_cast<uint16_t>(index));

  // Warm-up: any lazy initialization happens here.
  logger.OnBusWrite(0x10000, 1, 4, true, 0, 0);
  logger.OnBusWrite(0x10004, 2, 4, true, 1000, 0);

  uint64_t before = g_allocation_count;
  // Spaced writes: the FIFO drains between them, no overload, and the tail
  // stays inside its first page (well under kPageSize/16 records).
  for (uint32_t i = 0; i < 100; ++i) {
    logger.OnBusWrite(0x10000 + 4 * (i % 1024), i, 4, true, 2000 + i * 1000, 0);
  }
  logger.SyncDrain(1000000);
  EXPECT_EQ(g_allocation_count, before);
  EXPECT_EQ(logger.records_logged(), 102u);
}

}  // namespace
}  // namespace lvm
