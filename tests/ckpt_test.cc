// Tests of the page-protection checkpointing and write-logging models
// (Section 5.1 comparators).
#include <gtest/gtest.h>

#include "src/ckpt/page_protect.h"

namespace lvm {
namespace {

constexpr uint32_t kBytes = 8 * kPageSize;

TEST(PageProtectCheckpointTest, RestoreRollsBack) {
  LvmSystem system;
  PageProtectCheckpoint ckpt(&system, kBytes);
  Cpu& cpu = system.cpu();
  ckpt.Write(&cpu, 0, 111);
  ckpt.Write(&cpu, kPageSize, 222);
  ckpt.Checkpoint(&cpu);
  ckpt.Write(&cpu, 0, 999);
  ckpt.Write(&cpu, 2 * kPageSize, 333);
  EXPECT_EQ(ckpt.Read(&cpu, 0), 999u);
  ckpt.Restore(&cpu);
  EXPECT_EQ(ckpt.Read(&cpu, 0), 111u);
  EXPECT_EQ(ckpt.Read(&cpu, kPageSize), 222u);
  EXPECT_EQ(ckpt.Read(&cpu, 2 * kPageSize), 0u);
}

TEST(PageProtectCheckpointTest, OneFaultPerPagePerInterval) {
  LvmSystem system;
  PageProtectCheckpoint ckpt(&system, kBytes);
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 256; ++i) {
    ckpt.Write(&cpu, 4 * i, i);  // Page 0 only.
  }
  EXPECT_EQ(ckpt.write_faults(), 1u);
  ckpt.Write(&cpu, 3 * kPageSize, 1);
  EXPECT_EQ(ckpt.write_faults(), 2u);
  ckpt.Checkpoint(&cpu);
  ckpt.Write(&cpu, 0, 5);
  EXPECT_EQ(ckpt.write_faults(), 3u);
}

TEST(PageProtectCheckpointTest, CheckpointCostScalesWithDirtyPages) {
  LvmSystem system;
  PageProtectCheckpoint ckpt(&system, kBytes);
  Cpu& cpu = system.cpu();
  // Dirty four pages.
  for (uint32_t p = 0; p < 4; ++p) {
    ckpt.Write(&cpu, p * kPageSize, p);
  }
  Cycles t0 = cpu.now();
  ckpt.Checkpoint(&cpu);
  Cycles four = cpu.now() - t0;
  ckpt.Write(&cpu, 0, 9);
  t0 = cpu.now();
  ckpt.Checkpoint(&cpu);
  Cycles one = cpu.now() - t0;
  EXPECT_GT(four, one);
}

TEST(PageProtectWriteLoggerTest, EveryWriteLogged) {
  LvmSystem system;
  PageProtectWriteLogger logger(&system, kBytes);
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 20; ++i) {
    logger.Write(&cpu, 4 * i, 100 + i);
  }
  ASSERT_EQ(logger.log().size(), 20u);
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(logger.log()[i].value, 100 + i);
    EXPECT_EQ(logger.log()[i].size, 4u);
  }
}

TEST(PageProtectWriteLoggerTest, CostsHundredsOfCyclesPerWrite) {
  // Section 5.1: a write fault including completing the write and logging
  // would take over 300 cycles — the motivation for hardware support.
  LvmSystem system;
  PageProtectWriteLogger logger(&system, kBytes);
  Cpu& cpu = system.cpu();
  logger.Write(&cpu, 0, 1);  // Warm the mapping.
  Cycles t0 = cpu.now();
  constexpr int kWrites = 100;
  for (int i = 0; i < kWrites; ++i) {
    logger.Write(&cpu, 4 * static_cast<uint32_t>(i % 64), static_cast<uint32_t>(i));
  }
  Cycles per_write = (cpu.now() - t0) / kWrites;
  EXPECT_GT(per_write, 300u);
}

TEST(PageProtectVsLvmTest, LvmLoggedWriteIsFarCheaper) {
  // The quantitative argument of Section 5.1 reproduced: LVM's hardware
  // logging versus per-write protection traps.
  LvmSystem trap_system;
  PageProtectWriteLogger trap_logger(&trap_system, kBytes);
  Cpu& trap_cpu = trap_system.cpu();
  trap_logger.Write(&trap_cpu, 0, 0);
  Cycles t0 = trap_cpu.now();
  for (uint32_t i = 0; i < 200; ++i) {
    trap_logger.Write(&trap_cpu, 4 * (i % 1024), i);
    trap_cpu.Compute(50);
  }
  Cycles trap_cycles = trap_cpu.now() - t0 - 200 * 50;

  LvmSystem lvm_system;
  StdSegment* segment = lvm_system.CreateSegment(kBytes);
  Region* region = lvm_system.CreateRegion(segment);
  LogSegment* log = lvm_system.CreateLogSegment(16);
  AddressSpace* as = lvm_system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  lvm_system.AttachLog(region, log);
  lvm_system.Activate(as);
  Cpu& lvm_cpu = lvm_system.cpu();
  lvm_cpu.Write(base, 0);
  t0 = lvm_cpu.now();
  for (uint32_t i = 0; i < 200; ++i) {
    lvm_cpu.Write(base + 4 * (i % 1024), i);
    lvm_cpu.Compute(50);
  }
  Cycles lvm_cycles = lvm_cpu.now() - t0 - 200 * 50;

  EXPECT_GT(trap_cycles, 20 * lvm_cycles);
}

}  // namespace
}  // namespace lvm
