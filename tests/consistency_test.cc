// Tests of the log-based and Munin twin/diff consistency protocols
// (Section 2.6).
#include <gtest/gtest.h>

#include "src/consistency/protocols.h"

namespace lvm {
namespace {

constexpr uint32_t kRegionBytes = 8 * kPageSize;

TEST(LogBasedConsistencyTest, ReplicaConvergesAtRelease) {
  LvmSystem system;
  LogBasedProtocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  protocol.Write(&cpu, 0, 1);
  protocol.Write(&cpu, 100, 2);
  protocol.Write(&cpu, kPageSize + 8, 3);
  EXPECT_NE(protocol.replica().ReadWord(0), 1u);  // Not yet released.
  protocol.Release(&cpu);
  EXPECT_EQ(protocol.replica().ReadWord(0), 1u);
  EXPECT_EQ(protocol.replica().ReadWord(100), 2u);
  EXPECT_EQ(protocol.replica().ReadWord(kPageSize + 8), 3u);
}

TEST(LogBasedConsistencyTest, OnlyUpdatedDataTransmitted) {
  LvmSystem system;
  LogBasedProtocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 10; ++i) {
    protocol.Write(&cpu, 4 * i, i);
  }
  protocol.Release(&cpu);
  // 10 word updates, not whole pages.
  EXPECT_EQ(protocol.channel().bytes_sent(), 10u * kUpdateWireBytes);
  EXPECT_EQ(protocol.channel().messages(), 1u);
}

TEST(LogBasedConsistencyTest, RepeatedWritesAllTransmitted) {
  // The paper's caveat: LVM can transmit more when a location is written
  // repeatedly between acquire and release.
  LvmSystem system;
  LogBasedProtocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 25; ++i) {
    protocol.Write(&cpu, 0, i);
  }
  protocol.Release(&cpu);
  EXPECT_EQ(protocol.channel().bytes_sent(), 25u * kUpdateWireBytes);
  EXPECT_EQ(protocol.replica().ReadWord(0), 24u);
}

TEST(LogBasedConsistencyTest, MultipleReleaseIntervals) {
  LvmSystem system;
  LogBasedProtocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  for (int interval = 0; interval < 5; ++interval) {
    protocol.Write(&cpu, 4 * static_cast<uint32_t>(interval), 100u + interval);
    protocol.Release(&cpu);
  }
  EXPECT_EQ(protocol.channel().messages(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(protocol.replica().ReadWord(4 * i), 100u + i);
  }
}

TEST(MuninConsistencyTest, ReplicaConvergesAtRelease) {
  LvmSystem system;
  MuninTwinProtocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  protocol.Write(&cpu, 0, 1);
  protocol.Write(&cpu, 100, 2);
  protocol.Write(&cpu, kPageSize + 8, 3);
  protocol.Release(&cpu);
  EXPECT_EQ(protocol.replica().ReadWord(0), 1u);
  EXPECT_EQ(protocol.replica().ReadWord(100), 2u);
  EXPECT_EQ(protocol.replica().ReadWord(kPageSize + 8), 3u);
}

TEST(MuninConsistencyTest, OneTwinFaultPerPagePerInterval) {
  LvmSystem system;
  MuninTwinProtocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 100; ++i) {
    protocol.Write(&cpu, 4 * i, i);  // All within page 0.
  }
  protocol.Write(&cpu, kPageSize, 1);  // Page 1.
  EXPECT_EQ(protocol.twin_faults(), 2u);
  protocol.Release(&cpu);
  protocol.Write(&cpu, 0, 5);  // New interval: faults again.
  EXPECT_EQ(protocol.twin_faults(), 3u);
}

TEST(MuninConsistencyTest, RepeatedWritesCoalesced) {
  // Munin's diff transmits one update for 25 writes of the same word...
  LvmSystem system;
  MuninTwinProtocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 25; ++i) {
    protocol.Write(&cpu, 0, i);
  }
  protocol.Release(&cpu);
  EXPECT_EQ(protocol.channel().bytes_sent(), 1u * kUpdateWireBytes);
  EXPECT_EQ(protocol.replica().ReadWord(0), 24u);
}

TEST(MuninConsistencyTest, WriteBackToOriginalValueNotTransmitted) {
  LvmSystem system;
  MuninTwinProtocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  protocol.Write(&cpu, 0, 7);
  protocol.Release(&cpu);
  // Write 9 then back to 7: the diff sees no change.
  protocol.Write(&cpu, 0, 9);
  protocol.Write(&cpu, 0, 7);
  uint64_t bytes_before = protocol.channel().bytes_sent();
  protocol.Release(&cpu);
  EXPECT_EQ(protocol.channel().bytes_sent(), bytes_before);
}

TEST(ConsistencyComparisonTest, SparseUpdatesFavorLogBased) {
  // Sparse writes scattered over many pages: LVM avoids the per-page twin
  // copies and full-page diff scans.
  auto run_sparse = [](auto& protocol, Cpu& cpu) {
    Cycles t0 = cpu.now();
    for (uint32_t page = 0; page < 8; ++page) {
      protocol.Write(&cpu, page * kPageSize + 64, page + 1);
    }
    protocol.Release(&cpu);
    return cpu.now() - t0;
  };

  LvmSystem sys_log;
  LogBasedProtocol log_protocol(&sys_log, kRegionBytes, ConsistencyCosts{});
  Cycles log_cycles = run_sparse(log_protocol, sys_log.cpu());

  LvmSystem sys_munin;
  MuninTwinProtocol munin_protocol(&sys_munin, kRegionBytes, ConsistencyCosts{});
  Cycles munin_cycles = run_sparse(munin_protocol, sys_munin.cpu());

  EXPECT_LT(log_cycles * 3, munin_cycles);
  EXPECT_EQ(log_protocol.channel().bytes_sent(), munin_protocol.channel().bytes_sent());
}

TEST(ConsistencyComparisonTest, HotSpotRewritesFavorMuninBytes) {
  // The same word written many times: Munin transmits one update, LVM
  // transmits them all (the Section 2.6 caveat, believed uncommon).
  LvmSystem sys_log;
  LogBasedProtocol log_protocol(&sys_log, kRegionBytes, ConsistencyCosts{});
  for (uint32_t i = 0; i < 200; ++i) {
    log_protocol.Write(&sys_log.cpu(), 0, i);
  }
  log_protocol.Release(&sys_log.cpu());

  LvmSystem sys_munin;
  MuninTwinProtocol munin_protocol(&sys_munin, kRegionBytes, ConsistencyCosts{});
  for (uint32_t i = 0; i < 200; ++i) {
    munin_protocol.Write(&sys_munin.cpu(), 0, i);
  }
  munin_protocol.Release(&sys_munin.cpu());

  EXPECT_GT(log_protocol.channel().bytes_sent(), munin_protocol.channel().bytes_sent());
}

}  // namespace
}  // namespace lvm
