// lvm-analyze engine tests: every rule against a violating and a clean
// fixture (tests/analyze_fixtures/), interprocedural propagation, custom
// guard discovery, suppression comments, declared-edge comments, exit-code
// mapping, the JSON exports, and — the check that matters — a clean run
// over the repo's real src/ tree.
#include "tools/lvm_analyze/analyze.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {
namespace analyze {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LVM_SOURCE_ROOT) + "/tests/analyze_fixtures/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A miniature rank header: the declaration order (kRankFirst before
// kRankSecond) is the declared total order the decl checks enforce.
constexpr char kRankHeader[] =
    "inline constexpr int kRankFirst = 1;\n"
    "inline constexpr int kRankSecond = 2;\n";

// Analyzes one fixture as if it lived at `virtual_path`, with the miniature
// rank header installed at the default rank-header path.
AnalysisResult AnalyzeFixture(const std::string& name,
                              const std::string& virtual_path = "src/fixture.cc") {
  Analyzer analyzer;
  analyzer.AddSource(AnalyzeOptions{}.rank_header, kRankHeader);
  analyzer.AddSource(virtual_path, ReadFixture(name));
  return analyzer.Run();
}

void ExpectOnlyRule(const AnalysisResult& result, Rule rule) {
  ASSERT_FALSE(result.findings.empty());
  for (const Finding& f : result.findings) {
    EXPECT_EQ(f.rule, rule) << f.file << ":" << f.line << ": " << f.message;
    EXPECT_GT(f.line, 0);
  }
  EXPECT_EQ(ExitCodeFor(result), RuleExitCode(rule));
}

bool HasEdge(const AnalysisResult& result, const std::string& from, const std::string& to) {
  for (const LockEdge& e : result.edges) {
    if (e.from == from && e.to == to) {
      return true;
    }
  }
  return false;
}

TEST(AnalyzeRules, CycleViolation) {
  AnalysisResult result = AnalyzeFixture("cycle_violation.cc");
  ExpectOnlyRule(result, Rule::kLockCycle);
  EXPECT_EQ(ExitCodeFor(result), 20);
  EXPECT_TRUE(HasEdge(result, "Pair::a_", "Pair::b_"));
  EXPECT_TRUE(HasEdge(result, "Pair::b_", "Pair::a_"));
  // The finding prints both conflicting acquisition paths.
  EXPECT_NE(result.findings[0].message.find("Forward"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("Backward"), std::string::npos);
}

TEST(AnalyzeRules, CycleClean) {
  AnalysisResult result = AnalyzeFixture("cycle_clean.cc");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(ExitCodeFor(result), 0);
  EXPECT_TRUE(HasEdge(result, "Pair::a_", "Pair::b_"));
  EXPECT_FALSE(HasEdge(result, "Pair::b_", "Pair::a_"));
}

TEST(AnalyzeRules, CycleAcrossCalls) {
  // Outer holds first_ while Inner takes second_; the edge only exists
  // through the interprocedural held-set propagation.
  AnalysisResult result = AnalyzeFixture("cycle_interprocedural.cc");
  ExpectOnlyRule(result, Rule::kLockCycle);
  EXPECT_TRUE(HasEdge(result, "Chain::first_", "Chain::second_"));
  EXPECT_TRUE(HasEdge(result, "Chain::second_", "Chain::first_"));
}

TEST(AnalyzeRules, CycleThroughDiscoveredGuard) {
  // SpinGuard is only known to acquire through its LVM_ACQUIRE(mu)
  // constructor annotation; the cycle proves the discovery worked.
  AnalysisResult result = AnalyzeFixture("guard_discovery.cc");
  ExpectOnlyRule(result, Rule::kLockCycle);
  EXPECT_TRUE(HasEdge(result, "Pair::a_", "Pair::b_"));
  EXPECT_TRUE(HasEdge(result, "Pair::b_", "Pair::a_"));
}

TEST(AnalyzeRules, BlockingViolation) {
  AnalysisResult result = AnalyzeFixture("blocking_violation.cc");
  ExpectOnlyRule(result, Rule::kLockBlocking);
  EXPECT_EQ(ExitCodeFor(result), 21);
  EXPECT_NE(result.findings[0].message.find("fsync"), std::string::npos);
}

TEST(AnalyzeRules, BlockingClean) {
  // CondVar::Wait against its own mutex and an unlocked fsync: both fine.
  AnalysisResult result = AnalyzeFixture("blocking_clean.cc");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(ExitCodeFor(result), 0);
}

TEST(AnalyzeRules, BlockingSuppressed) {
  AnalysisResult result = AnalyzeFixture("blocking_suppressed.cc");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressions_used, 1u);
  EXPECT_EQ(ExitCodeFor(result), 0);
}

TEST(AnalyzeRules, WalPersistOrderViolation) {
  // Only applies under a WAL path, hence the virtual location.
  AnalysisResult result = AnalyzeFixture("wal_violation.cc", "src/hostlvm/fixture.cc");
  ExpectOnlyRule(result, Rule::kWalPersistOrder);
  EXPECT_EQ(ExitCodeFor(result), 22);
}

TEST(AnalyzeRules, WalPersistOrderClean) {
  // Self-syncing writer plus a dirty helper whose caller orders the barrier.
  AnalysisResult result = AnalyzeFixture("wal_clean.cc", "src/hostlvm/fixture.cc");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeRules, WalRuleScopedToWalPaths) {
  // The same torn write outside src/hostlvm/ is not this rule's business.
  AnalysisResult result = AnalyzeFixture("wal_violation.cc", "src/sim/fixture.cc");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeRules, LockDeclViolation) {
  AnalysisResult result = AnalyzeFixture("lock_decl_violation.cc");
  ExpectOnlyRule(result, Rule::kLockDecl);
  EXPECT_EQ(ExitCodeFor(result), 23);
  // Three distinct contradictions: name mismatch, unknown rank constant,
  // and an edge against the declared rank order.
  EXPECT_EQ(result.findings.size(), 3u);
}

TEST(AnalyzeRules, LockDeclClean) {
  AnalysisResult result = AnalyzeFixture("lock_decl_clean.cc");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.lock_ranks.at("Registry::first_"), 1);
  EXPECT_EQ(result.lock_ranks.at("Registry::second_"), 2);
}

TEST(AnalyzeFacts, DeclaredEdgeComment) {
  Analyzer analyzer;
  analyzer.AddSource("src/fixture.cc",
                     "// lvm-analyze: edge(Widget::mu_, Gadget::mu_)\n"
                     "namespace lvm {\n"
                     "class Widget { Mutex mu_; };\n"
                     "class Gadget { Mutex mu_; };\n"
                     "}  // namespace lvm\n");
  AnalysisResult result = analyzer.Run();
  EXPECT_TRUE(HasEdge(result, "Widget::mu_", "Gadget::mu_"));
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeExitCodes, MixedRulesCollapseToGenericFailure) {
  Analyzer analyzer;
  analyzer.AddSource("src/fixture.cc", ReadFixture("cycle_violation.cc"));
  analyzer.AddSource("src/hostlvm/fixture.cc", ReadFixture("wal_violation.cc"));
  AnalysisResult result = analyzer.Run();
  EXPECT_GE(result.findings.size(), 2u);
  EXPECT_EQ(ExitCodeFor(result), 1);
}

TEST(AnalyzeReport, JsonIsStrictAndCarriesSchema) {
  AnalysisResult result = AnalyzeFixture("cycle_violation.cc");
  const std::string report = ReportJson(result);
  EXPECT_TRUE(obs::ValidateJson(report)) << report;
  EXPECT_NE(report.find(obs::kAnalysisReportSchema), std::string::npos);

  const std::string graph = LockGraphJson(result);
  EXPECT_TRUE(obs::ValidateJson(graph)) << graph;
  EXPECT_NE(graph.find(obs::kLockGraphSchema), std::string::npos);
  EXPECT_NE(graph.find("\"source\":\"static\""), std::string::npos);
}

TEST(AnalyzeReport, GraphDotListsEveryEdge) {
  AnalysisResult result = AnalyzeFixture("cycle_clean.cc");
  const std::string dot = GraphDot(result);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"Pair::a_\" -> \"Pair::b_\""), std::string::npos);
}

TEST(AnalyzePaths, MissingPathFails) {
  AnalysisResult result;
  std::string error;
  EXPECT_FALSE(AnalyzePaths({"no/such/path"}, AnalyzeOptions{}, &result, &error));
  EXPECT_FALSE(error.empty());
}

// The check that matters: the repo's own src/ tree is clean, and the static
// graph knows every long-lived lock by its canonical name.
TEST(AnalyzeRepo, SrcTreeIsClean) {
  AnalysisResult result;
  std::string error;
  ASSERT_TRUE(
      AnalyzePaths({std::string(LVM_SOURCE_ROOT) + "/src"}, AnalyzeOptions{}, &result, &error))
      << error;
  for (const Finding& f : result.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << RuleName(f.rule) << "] " << f.message;
  }
  EXPECT_GE(result.lock_ids.size(), 11u);
  EXPECT_GE(result.edges.size(), 10u);
  // Spot-check the hierarchy the system is built around.
  EXPECT_TRUE(HasEdge(result, "ParallelEngine::mu_", "RaceDetector::sync_mu_"));
  EXPECT_TRUE(HasEdge(result, "RaceDetector::Stripe::mu", "RaceDetector::report_mu_"));
}

}  // namespace
}  // namespace analyze
}  // namespace lvm
