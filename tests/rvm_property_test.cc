// Property-based recoverable-memory tests: random transaction streams
// (reads, writes, commits, aborts) against a shadow model with explicit
// committed/speculative images, run over both store implementations.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/rvm/ram_disk.h"
#include "src/rvm/rlvm.h"
#include "src/rvm/rvm.h"

namespace lvm {
namespace {

constexpr uint32_t kStoreBytes = 64 * 1024;

class ShadowStore {
 public:
  ShadowStore() : committed_(kStoreBytes, 0), speculative_(kStoreBytes, 0) {}

  void Begin() { speculative_ = committed_; }
  void Write(uint32_t offset, uint32_t value) {
    std::memcpy(&speculative_[offset], &value, 4);
  }
  uint32_t Read(uint32_t offset) const {
    uint32_t value = 0;
    std::memcpy(&value, &speculative_[offset], 4);
    return value;
  }
  void Commit() { committed_ = speculative_; }
  void Abort() { speculative_ = committed_; }

 private:
  std::vector<uint8_t> committed_;
  std::vector<uint8_t> speculative_;
};

struct StoreCase {
  const char* name;
  bool rlvm;
  uint64_t seed;
  double abort_probability;
  uint32_t writes_per_transaction;
};

class StorePropertyTest : public ::testing::TestWithParam<StoreCase> {};

TEST_P(StorePropertyTest, RandomTransactionsMatchShadow) {
  const StoreCase& param = GetParam();
  LvmSystem system;
  RamDisk disk;
  AddressSpace* as = system.CreateAddressSpace();
  std::unique_ptr<RecoverableStore> store;
  if (param.rlvm) {
    store = std::make_unique<Rlvm>(&system, as, &disk, kStoreBytes);
  } else {
    store = std::make_unique<Rvm>(&system, as, &disk, kStoreBytes);
  }
  system.Activate(as);
  Cpu& cpu = system.cpu();

  ShadowStore shadow;
  Rng rng(param.seed);
  constexpr int kTransactions = 120;
  for (int tx = 0; tx < kTransactions; ++tx) {
    store->Begin(&cpu);
    shadow.Begin();
    for (uint32_t w = 0; w < param.writes_per_transaction; ++w) {
      uint32_t offset = static_cast<uint32_t>(rng.Uniform(kStoreBytes / 4)) * 4;
      auto value = static_cast<uint32_t>(rng.Next64());
      store->SetRange(&cpu, store->data_base() + offset, 4);
      store->Write(&cpu, store->data_base() + offset, value);
      shadow.Write(offset, value);
      // Transactional read-your-writes.
      ASSERT_EQ(store->Read(&cpu, store->data_base() + offset), shadow.Read(offset));
    }
    if (rng.Chance(param.abort_probability)) {
      store->Abort(&cpu);
      shadow.Abort();
    } else {
      store->Commit(&cpu);
      shadow.Commit();
    }
    store->MaybeTruncate(&cpu);

    // Spot-check a few random words after every transaction.
    for (int probe = 0; probe < 4; ++probe) {
      uint32_t at = static_cast<uint32_t>(rng.Uniform(kStoreBytes / 4)) * 4;
      ASSERT_EQ(store->Read(&cpu, store->data_base() + at), shadow.Read(at))
          << "tx " << tx << " offset " << at;
    }
  }

  // Full final sweep.
  for (uint32_t offset = 0; offset < kStoreBytes; offset += 4) {
    ASSERT_EQ(store->Read(&cpu, store->data_base() + offset), shadow.Read(offset))
        << "offset " << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StorePropertyTest,
    ::testing::Values(StoreCase{"rvm_no_aborts", false, 21, 0.0, 8},
                      StoreCase{"rvm_some_aborts", false, 22, 0.3, 8},
                      StoreCase{"rvm_abort_heavy", false, 23, 0.7, 4},
                      StoreCase{"rlvm_no_aborts", true, 24, 0.0, 8},
                      StoreCase{"rlvm_some_aborts", true, 25, 0.3, 8},
                      StoreCase{"rlvm_abort_heavy", true, 26, 0.7, 4},
                      StoreCase{"rvm_big_transactions", false, 27, 0.2, 40},
                      StoreCase{"rlvm_big_transactions", true, 28, 0.2, 40}),
    [](const ::testing::TestParamInfo<StoreCase>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace lvm
