// Property-based mapped-file tests: random writes interleaved with random
// sync operations against a shadow "disk" — the file must always equal the
// memory image as of the last sync, whichever msync flavour ran.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/mfile/mapped_file.h"

namespace lvm {
namespace {

struct SyncCase {
  const char* name;
  uint64_t seed;
  double page_sync_probability;  // vs log-based sync at each sync point.
  uint32_t writes_per_round;
  uint32_t rounds;
};

class MfilePropertyTest : public ::testing::TestWithParam<SyncCase> {};

TEST_P(MfilePropertyTest, FileMatchesMemoryAtEverySync) {
  const SyncCase& param = GetParam();
  constexpr uint32_t kPages = 8;
  constexpr uint32_t kBytes = kPages * kPageSize;

  LvmSystem system;
  FileSystem fs;
  SimFile* file = fs.Create("prop.db", kBytes);
  Rng init(param.seed ^ 0xF00D);
  for (uint32_t i = 0; i < kBytes / 4; ++i) {
    uint32_t value = static_cast<uint32_t>(init.Next64());
    std::memcpy(file->data() + 4 * i, &value, 4);
  }
  std::vector<uint8_t> disk_shadow(file->data(), file->data() + kBytes);
  std::vector<uint8_t> memory_shadow = disk_shadow;

  AddressSpace* as = system.CreateAddressSpace();
  MappedFile mapped(&system, as, file);
  mapped.AttachLogging();
  system.Activate(as);
  Cpu& cpu = system.cpu();

  Rng rng(param.seed);
  for (uint32_t round = 0; round < param.rounds; ++round) {
    for (uint32_t w = 0; w < param.writes_per_round; ++w) {
      uint32_t offset = static_cast<uint32_t>(rng.Uniform(kBytes / 4)) * 4;
      auto value = static_cast<uint32_t>(rng.Next64());
      cpu.Write(mapped.base() + offset, value);
      std::memcpy(&memory_shadow[offset], &value, 4);
    }
    if (rng.Chance(param.page_sync_probability)) {
      mapped.Msync(&cpu);
    } else {
      mapped.MsyncFromLog(&cpu);
    }
    disk_shadow = memory_shadow;
    // The file equals the memory image as of this sync.
    ASSERT_EQ(std::memcmp(file->data(), disk_shadow.data(), kBytes), 0)
        << "round " << round;
    // Memory reads agree with the shadow too.
    for (int probe = 0; probe < 16; ++probe) {
      uint32_t at = static_cast<uint32_t>(rng.Uniform(kBytes / 4)) * 4;
      uint32_t expected = 0;
      std::memcpy(&expected, &memory_shadow[at], 4);
      ASSERT_EQ(cpu.Read(mapped.base() + at), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MfilePropertyTest,
    ::testing::Values(SyncCase{"log_sync_only", 31, 0.0, 50, 20},
                      SyncCase{"page_sync_only", 32, 1.0, 50, 20},
                      SyncCase{"mixed", 33, 0.5, 50, 20},
                      SyncCase{"mixed_small_rounds", 34, 0.4, 5, 40},
                      SyncCase{"mixed_big_rounds", 35, 0.6, 300, 8}),
    [](const ::testing::TestParamInfo<SyncCase>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace lvm
