// Edge cases of the direct-mapped and indexed logging modes (Section 2.6)
// at the full-system level.
#include <gtest/gtest.h>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

TEST(DirectMappedModeTest, SubWordWritesMirrorExactly) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* mirror = system.CreateLogSegment(1);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, mirror, LogMode::kDirectMapped);
  system.Activate(as);

  cpu.Write(base + 100, 0xDDCCBBAA);
  cpu.Write(base + 101, 0x7F, 1);   // Overwrite one byte of the word.
  cpu.Write(base + 200, 0x1234, 2);
  system.SyncLog(&cpu, mirror);

  EXPECT_EQ(system.memory().Read(mirror->FrameAt(0) + 100, 4), 0xDDCC7FAAu);
  EXPECT_EQ(system.memory().Read(mirror->FrameAt(0) + 200, 2), 0x1234u);
  // The mirror matches the data segment at the written locations.
  EXPECT_EQ(system.memory().Read(mirror->FrameAt(0) + 100, 4),
            system.memory().Read(segment->FrameAt(0) + 100, 4));
}

TEST(DirectMappedModeTest, MirrorGrowsWithDataSegment) {
  // A small log segment is extended page by page as the data segment's
  // pages fault in.
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(6 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* mirror = system.CreateLogSegment(0);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, mirror, LogMode::kDirectMapped);
  system.Activate(as);
  cpu.Write(base + 5 * kPageSize + 8, 55);
  system.SyncLog(&cpu, mirror);
  EXPECT_GE(mirror->page_count(), 6u);
  EXPECT_EQ(system.memory().Read(mirror->FrameAt(5) + 8, 4), 55u);
}

TEST(IndexedModeTest, StreamCrossesPageBoundary) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(4 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* stream = system.CreateLogSegment(1);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, stream, LogMode::kIndexed);
  system.Activate(as);

  constexpr uint32_t kValues = kPageSize / 4 + 100;  // Past one page of words.
  for (uint32_t i = 0; i < kValues; ++i) {
    cpu.Write(base + 4 * (i % 1024), 70000 + i);
    cpu.Compute(300);
  }
  system.SyncLog(&cpu, stream);
  IndexedLogReader reader(system.memory(), *stream);
  ASSERT_EQ(reader.size(), kValues);
  for (uint32_t i = 0; i < kValues; ++i) {
    ASSERT_EQ(reader.At(i), 70000 + i) << "value " << i;
  }
  EXPECT_GE(stream->page_count(), 2u);
}

TEST(IndexedModeTest, MixedSizesPackBackToBack) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* stream = system.CreateLogSegment(1);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, stream, LogMode::kIndexed);
  system.Activate(as);

  cpu.Write(base + 0, 0x11, 1);
  cpu.Compute(500);
  cpu.Write(base + 2, 0x2233, 2);
  cpu.Compute(500);
  cpu.Write(base + 4, 0x44556677, 4);
  system.SyncLog(&cpu, stream);
  // Bytes: 11 | 33 22 | 77 66 55 44 — packed with no addresses or padding.
  PhysAddr frame = stream->FrameAt(0);
  EXPECT_EQ(system.memory().Read(frame + 0, 1), 0x11u);
  EXPECT_EQ(system.memory().Read(frame + 1, 2), 0x2233u);
  EXPECT_EQ(system.memory().Read(frame + 3, 4), 0x44556677u);
  EXPECT_EQ(stream->append_offset, 7u);
}

TEST(ModeMixTest, DifferentRegionsDifferentModes) {
  // Three regions, three modes, one system: streams stay separate.
  LvmSystem system;
  Cpu& cpu = system.cpu();
  auto make = [&](LogMode mode, uint32_t pages) {
    StdSegment* segment = system.CreateSegment(pages * kPageSize);
    Region* region = system.CreateRegion(segment);
    LogSegment* log = system.CreateLogSegment(1);
    system.AttachLog(region, log, mode);
    return std::pair<Region*, LogSegment*>(region, log);
  };
  AddressSpace* as = system.CreateAddressSpace();
  auto [normal_region, normal_log] = make(LogMode::kNormal, 1);
  auto [direct_region, direct_log] = make(LogMode::kDirectMapped, 1);
  auto [indexed_region, indexed_log] = make(LogMode::kIndexed, 1);
  VirtAddr normal_base = as->BindRegion(normal_region);
  VirtAddr direct_base = as->BindRegion(direct_region);
  VirtAddr indexed_base = as->BindRegion(indexed_region);
  system.Activate(as);

  cpu.Write(normal_base, 1);
  cpu.Compute(500);
  cpu.Write(direct_base + 40, 2);
  cpu.Compute(500);
  cpu.Write(indexed_base, 3);
  system.SyncLog(&cpu, normal_log);
  system.SyncLog(&cpu, indexed_log);

  LogReader normal(system.memory(), *normal_log);
  ASSERT_EQ(normal.size(), 1u);
  EXPECT_EQ(normal.At(0).value, 1u);
  EXPECT_EQ(system.memory().Read(direct_log->FrameAt(0) + 40, 4), 2u);
  IndexedLogReader indexed(system.memory(), *indexed_log);
  ASSERT_EQ(indexed.size(), 1u);
  EXPECT_EQ(indexed.At(0), 3u);
}

}  // namespace
}  // namespace lvm
