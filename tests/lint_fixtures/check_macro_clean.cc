// Fixture: project invariants go through LVM_CHECK; static_assert is fine.
#include "src/base/check.h"

namespace lvm {

void Validate(int occupancy, int capacity) {
  LVM_CHECK(occupancy >= 0);
  LVM_CHECK_MSG(occupancy <= capacity, "ring overfull");
  static_assert(sizeof(int) >= 4, "assumed by the packing below");
}

}  // namespace lvm
