// Fixture: paired flight-recorder events recorded in matched numbers.
#include "src/obs/flight_recorder.h"

namespace lvm {

void ParkAndRelease(obs::FlightRecorder* flight, Cycles now, Cycles resume) {
  flight->Record(0, obs::FlightEventKind::kOverloadSuspend, now, "park", 0, 0, 0);
  // ... drain ...
  flight->Record(0, obs::FlightEventKind::kOverloadResume, resume, "release", 0, 0, 0);
}

void RunEngine(obs::FlightRecorder* flight, Cycles now) {
  flight->Record(0, obs::FlightEventKind::kEngineStart, now, "parallel", 2, 0, 0);
  flight->Record(0, obs::FlightEventKind::kEngineJoin, now + 100, "join", 2, 0, 0);
}

}  // namespace lvm
