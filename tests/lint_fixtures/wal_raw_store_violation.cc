// Fixture: raw writes into the WAL arena's mapped bytes from outside
// src/hostlvm/ — they bypass the framed append path.
#include <cstring>

#include "src/hostlvm/wal_arena.h"

namespace lvm {

void ScribbleOnBlock(WalArena* wal, const void* bytes) {
  std::memcpy(wal->raw_block_bytes(0), bytes, 16);  // skips BEGIN/END framing
}

void ScribbleOnSuperblock(WalArena& wal, const void* bytes) {
  std::memcpy(wal.raw_superblock_bytes(), bytes, 8);
}

}  // namespace lvm
