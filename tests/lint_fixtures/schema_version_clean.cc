// Fixture: schema ids referenced through the registry constants.
#include <string>

#include "src/obs/schema_ids.h"

namespace lvm {

std::string BuildReport() {
  std::string out = "{\"schema\":\"";
  out += obs::kLintReportSchema;
  out += "\"}";
  // The waterfall export goes through the registry constant too.
  out += "{\"schema\":\"";
  out += obs::kWaterfallSchema;
  out += "\"}";
  // Near-miss literals that must NOT trigger: wrong prefix, no version atom.
  out += "vm.report.v1";
  out += "lvm.report";
  return out;
}

}  // namespace lvm
