// Fixture: a raw physical-memory store outside the machine/kernel layers.
#include "src/sim/phys_mem.h"

namespace lvm {

void SneakyCheckpoint(PhysicalMemory* memory, PhysAddr dst, const void* bytes) {
  memory->WriteBlock(dst, bytes, 16);  // bypasses the logged-write path
}

void SneakyCopy(PhysicalMemory& memory, PhysAddr dst, PhysAddr src) {
  memory.CopyBlock(dst, src, 16);
}

}  // namespace lvm
