// Fixture: every allow() either matches a finding or is a fenced keeper.
#include "src/sim/phys_mem.h"

namespace lvm {

void MeasuredBaselineCopy(PhysicalMemory& memory, PhysAddr dst, PhysAddr src) {
  // A live suppression: it silences the raw store on the next line.
  // lvm-lint: allow(raw-store)
  memory.CopyBlock(dst, src, 4096);
}

// A keeper: generated code pasted below this line sometimes reintroduces the
// raw store, so the fence stays. lvm-lint: allow(dead-suppression)
// lvm-lint: allow(raw-store)
void GeneratedCodeAnchor() {}

}  // namespace lvm
