// Fixture: an explicit profiler scope opened without its matching close.
#include "src/obs/profiler.h"

namespace lvm {

void FaultPath(obs::Profiler* profiler, int lane) {
  LVM_PROF_BEGIN(profiler, lane, obs::CostCenter::kVmFault);
  // ... handle the fault ...
  // BUG: never calls LVM_PROF_END, so every later cycle on this lane is
  // charged to vm/page_fault.
}

}  // namespace lvm
