// Fixture: an overload suspension recorded without its matching resume.
#include "src/obs/flight_recorder.h"

namespace lvm {

void ParkWorkers(obs::FlightRecorder* flight, Cycles now) {
  flight->Record(0, obs::FlightEventKind::kOverloadSuspend, now, "park", 0, 0, 0);
  // ... drain ...
  // BUG: never records kOverloadResume, leaving an open interval.
}

}  // namespace lvm
