// Fixture: a deliberate raw store silenced by an allow() comment.
#include "src/sim/phys_mem.h"

namespace lvm {

void MeasuredBaselineCopy(PhysicalMemory& memory, PhysAddr dst, PhysAddr src) {
  // This is the unlogged copying baseline an experiment measures against.
  // lvm-lint: allow(raw-store)
  memory.CopyBlock(dst, src, 4096);
}

void TrailingStyle(PhysicalMemory& memory, PhysAddr dst, const void* bytes) {
  memory.WriteBlock(dst, bytes, 16);  // lvm-lint: allow(raw-store)
}

}  // namespace lvm
