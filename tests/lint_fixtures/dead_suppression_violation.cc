// Fixture: stale allow() comments that silence nothing.
#include "src/sim/phys_mem.h"

namespace lvm {

// The raw store this once fenced was refactored away; the comment stayed.
// lvm-lint: allow(raw-store)
void FormerlyRawCopy(PhysicalMemory& memory) { (void)memory; }

// A slug that never named a rule — the typo could never match anything.
// lvm-lint: allow(raw-stores)
void TypoedSuppression() {}

}  // namespace lvm
