// Fixture: WAL writes flow through the framed append path.
#include "src/hostlvm/wal_arena.h"

namespace lvm {

uint64_t FramedCommit(WalArena* wal, const std::vector<WalRecord>& records) {
  return wal->Append(records, /*timestamp_ns=*/0);  // framed, checksummed
}

// A free function named like the accessor is fine: only member calls count.
const uint8_t* raw_block_bytes(const uint8_t* base) { return base; }

const uint8_t* NotAMemberCall(const uint8_t* base) { return raw_block_bytes(base); }

}  // namespace lvm
