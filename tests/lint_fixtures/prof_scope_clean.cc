// Fixture: explicit profiler scopes opened and closed in matched numbers,
// plus the RAII form, which cannot unbalance.
#include "src/obs/profiler.h"

namespace lvm {

void FaultPath(obs::Profiler* profiler, int lane) {
  LVM_PROF_BEGIN(profiler, lane, obs::CostCenter::kVmFault);
  // ... handle the fault ...
  LVM_PROF_END(profiler, lane);
}

void CheckpointPath(obs::Profiler* profiler, int lane) {
  LVM_PROF_SCOPE(profiler, lane, obs::CostCenter::kCheckpoint);
  // ... checkpoint ...
}

}  // namespace lvm
