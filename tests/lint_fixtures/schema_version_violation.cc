// Fixture: a schema version literal outside the registry header.
#include <string>

namespace lvm {

std::string BuildReport() {
  std::string out = "{\"schema\":\"";
  out += "lvm.side_report.v1";  // must live in src/obs/schema_ids.h
  out += "\"}";
  return out;
}

}  // namespace lvm
