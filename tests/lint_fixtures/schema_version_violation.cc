// Fixture: a schema version literal outside the registry header.
#include <string>

namespace lvm {

std::string BuildReport() {
  std::string out = "{\"schema\":\"";
  out += "lvm.side_report.v1";  // must live in src/obs/schema_ids.h
  out += "\"}";
  // A registered id spelled as a literal is still a violation: consumers
  // must reference obs::kWaterfallSchema, not restate it.
  out += "lvm.waterfall.v1";
  return out;
}

}  // namespace lvm
