// Fixture: stores flow through the logged-write path (Cpu::Write).
#include "src/sim/cpu.h"

namespace lvm {

void LoggedStore(Cpu& cpu, VirtAddr va, uint32_t value) {
  cpu.Write(va, value, 4);  // the logger snoops this
}

// A free function named like a mutator is fine: only member calls count.
void Zero(int* x) { *x = 0; }

void NotAMemberCall(int* x) { Zero(x); }

}  // namespace lvm
