// Fixture: conforming metric names, plus computed names (out of scope).
#include <string>

#include "src/obs/metrics.h"

namespace lvm {

void RegisterGoodMetrics(obs::MetricsRegistry* registry, const obs::Counter* c,
                         const obs::Histogram* h, const std::string& prefix) {
  registry->RegisterCounter("par.overload_events", c);
  registry->RegisterCounter("logger.shard0.appends", c);
  registry->RegisterHistogram("par.shard_occupancy", h);
  registry->RegisterCounter(prefix + "appends", c);  // computed: not checked
  obs::Counter* owned = registry->counter("kernel.logging_faults");
  (void)owned;
}

}  // namespace lvm
