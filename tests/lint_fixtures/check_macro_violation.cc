// Fixture: assert() in non-test code.
#include <cassert>

namespace lvm {

void Validate(int occupancy, int capacity) {
  assert(occupancy <= capacity);  // vanishes under NDEBUG, no black box
}

}  // namespace lvm
