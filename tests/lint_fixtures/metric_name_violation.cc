// Fixture: metric literals off the subsystem.name lowercase-dot convention.
#include "src/obs/metrics.h"

namespace lvm {

void RegisterBadMetrics(obs::MetricsRegistry* registry, const obs::Counter* c) {
  registry->RegisterCounter("OverloadEvents", c);  // no dot, CamelCase
  registry->RegisterCounter("par.BadCase", c);     // uppercase atom
}

}  // namespace lvm
