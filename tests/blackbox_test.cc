// Tests of the flight recorder and the black-box crash-dump pipeline: ring
// bounding and drop accounting, event capture at the kernel call sites, the
// lvm.blackbox.v1 writer/reader round trip, auto-dump on an invariant
// violation, the crash-handler hooks, and the post-mortem tail replay
// cross-check.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/check/fault_injection.h"
#include "src/check/invariant_checker.h"
#include "src/check/log_replay_verifier.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/blackbox_reader.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/par/engine.h"

namespace lvm {
namespace {

using obs::BlackBoxDump;
using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;

// A temp path unique to the current test, removed on destruction.
class ScopedDumpPath {
 public:
  ScopedDumpPath() {
    const testing::TestInfo* info = testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::string(testing::TempDir()) + info->test_suite_name() + "_" + info->name() +
            ".blackbox.json";
  }
  ~ScopedDumpPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- FlightRecorder unit behaviour ---

TEST(FlightRecorderTest, BoundedRingOverwritesOldestAndCountsDrops) {
  obs::FlightConfig config;
  config.ring_capacity = 4;
  config.sync_interval = 0;  // No sync events: counts below are exact.
  FlightRecorder flight(1, config);
  for (uint64_t i = 0; i < 10; ++i) {
    flight.Record(0, FlightEventKind::kMarker, /*ts=*/i, "m", i, 0, 0);
  }
  EXPECT_EQ(flight.events_recorded(), 10u);
  EXPECT_EQ(flight.events_dropped(), 6u);
  EXPECT_EQ(flight.occupancy(), 4u);

  // The survivors are the newest four, oldest first.
  std::vector<FlightEvent> events = flight.MergedEvents();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a0, 6 + i);
    if (i > 0) {
      EXPECT_GT(events[i].seq, events[i - 1].seq);
    }
  }
}

TEST(FlightRecorderTest, MergeOrdersAcrossRingsBySequence) {
  FlightRecorder flight(2, obs::FlightConfig{});
  flight.Record(0, FlightEventKind::kMarker, 5, "a", 0, 0, 0);
  flight.Record(flight.kernel_ring(), FlightEventKind::kMarker, 1, "b", 0, 0, 0);
  flight.Record(1, FlightEventKind::kMarker, 9, "c", 0, 0, 0);
  std::vector<FlightEvent> events = flight.MergedEvents();
  ASSERT_EQ(events.size(), 3u);
  // Merged order is recording order (seq), not timestamp order.
  EXPECT_STREQ(events[0].detail, "a");
  EXPECT_STREQ(events[1].detail, "b");
  EXPECT_STREQ(events[2].detail, "c");
}

TEST(FlightRecorderTest, SyncSamplerInjectsMetricsSyncEvents) {
  obs::FlightConfig config;
  config.sync_interval = 8;
  FlightRecorder flight(1, config);
  uint64_t sampled = 0;
  flight.SetSyncSampler([&sampled](uint64_t* a0, uint64_t* a1, uint64_t* a2) {
    *a0 = ++sampled;
    *a1 = 2 * sampled;
    *a2 = 0;
  });
  for (int i = 0; i < 32; ++i) {
    flight.Record(0, FlightEventKind::kMarker, 0, "m", 0, 0, 0);
  }
  size_t syncs = 0;
  for (const FlightEvent& e : flight.MergedEvents()) {
    if (e.kind == FlightEventKind::kMetricsSync) {
      ++syncs;
      EXPECT_EQ(e.a1, 2 * e.a0);
    }
  }
  EXPECT_EQ(syncs, sampled);
  EXPECT_GE(syncs, 3u);  // 32 markers at interval 8.
}

// --- capture at the system call sites ---

// Writes `count` paced words through a fresh logged region; returns the
// system's dump JSON.
struct LoggedRun {
  explicit LoggedRun(LvmSystem* system, uint32_t size = 4 * kPageSize) : system_(system) {
    segment = system->CreateSegment(size);
    region = system->CreateRegion(segment);
    log = system->CreateLogSegment();
    as = system->CreateAddressSpace();
    base = as->BindRegion(region);
    system->AttachLog(region, log, LogMode::kNormal);
    system->Activate(as);
  }
  void Write(uint32_t count, uint32_t pace = 300) {
    Cpu& cpu = system_->cpu();
    for (uint32_t i = 0; i < count; ++i) {
      cpu.Write(base + 4 * (i % (kPageSize / 4)), 0xbeef0000u + i);
      cpu.Compute(pace);
    }
    system_->SyncLog(&cpu, log);
  }
  LvmSystem* system_;
  StdSegment* segment = nullptr;
  Region* region = nullptr;
  LogSegment* log = nullptr;
  AddressSpace* as = nullptr;
  VirtAddr base = 0;
};

TEST(FlightCaptureTest, LoggingActivityLandsInTheKernelRing) {
  LvmSystem system;
  LoggedRun run(&system);
  run.Write(600);  // Crosses log pages: mapping fault + tail faults.

  bool saw_fault = false;
  bool saw_tail = false;
  for (const FlightEvent& e : system.flight().MergedEvents()) {
    if (e.kind == FlightEventKind::kLoggingFault) {
      saw_fault = true;
      EXPECT_EQ(e.ring, system.flight().kernel_ring());
    }
    if (e.kind == FlightEventKind::kLogTailAdvance) {
      saw_tail = true;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_tail);
  EXPECT_GT(system.GetStats().flight_events_recorded, 0u);
}

TEST(FlightCaptureTest, FlightMetricsAppearInRegistryAndStats) {
  LvmSystem system;
  LoggedRun run(&system);
  run.Write(50);
  obs::Snapshot snapshot = system.metrics().TakeSnapshot();
  EXPECT_GT(snapshot.counter("flight.events_recorded"), 0u);
  EXPECT_EQ(snapshot.counter("flight.events_recorded"), system.GetStats().flight_events_recorded);
  EXPECT_TRUE(snapshot.counters().contains("trace.events_recorded"));
  EXPECT_TRUE(snapshot.counters().contains("trace.events_dropped"));
  EXPECT_TRUE(snapshot.counters().contains("cpu.compute_cycles"));
}

// --- dump writer / reader round trip ---

TEST(BlackBoxTest, DumpRoundTripsThroughReader) {
  ScopedDumpPath dump_path;
  LvmSystem system;
  LoggedRun run(&system);
  run.Write(300);

  ASSERT_TRUE(system.DumpBlackBox(dump_path.path(), "manual", "round-trip test",
                                  {{"test-kind", "test-message"}}));

  BlackBoxDump dump;
  std::string error;
  ASSERT_TRUE(obs::LoadBlackBoxDump(dump_path.path(), &dump, &error)) << error;
  EXPECT_EQ(dump.cause, "manual");
  EXPECT_EQ(dump.cause_detail, "round-trip test");
  EXPECT_EQ(dump.rings, 2);  // 1 CPU + kernel.
  EXPECT_GT(dump.events_recorded, 0u);
  ASSERT_EQ(dump.violations.size(), 1u);
  EXPECT_EQ(dump.violations[0].kind, "test-kind");

  // The dumped counters match the live registry.
  obs::Snapshot snapshot = system.metrics().TakeSnapshot();
  EXPECT_EQ(dump.Counter("logger.records_logged"), snapshot.counter("logger.records_logged"));
  EXPECT_EQ(dump.Param("page_fault_cycles", 0), system.machine().params().page_fault_cycles);

  // The dumped log tail is the newest slice of the real log.
  ASSERT_EQ(dump.logs.size(), 1u);
  EXPECT_EQ(dump.logs[0].records, system.GetStats().records_logged);
  EXPECT_LE(dump.logs[0].tail_records.size(), 64u);
  EXPECT_FALSE(dump.logs[0].memory.empty());

  // Rendering works on the parsed dump and names the faulting component.
  EXPECT_NE(obs::RenderSummary(dump).find("manual"), std::string::npos);
  std::string timeline = obs::RenderTimeline(dump);
  EXPECT_NE(timeline.find("kernel"), std::string::npos);
  EXPECT_NE(obs::RenderAttribution(dump).find("logger"), std::string::npos);
}

TEST(BlackBoxTest, DumpIsStrictJson) {
  LvmSystem system;
  LoggedRun run(&system);
  run.Write(100);
  std::string json = system.BlackBoxJson("manual", "", {});
  EXPECT_TRUE(obs::ValidateJson(json));
}

// --- invariant-violation auto dump (the acceptance scenario) ---

TEST(BlackBoxTest, InvariantViolationTriggersSchemaValidDump) {
  ScopedDumpPath dump_path;
  LvmConfig config;
  config.seed = 7;
  LvmSystem system(config);
  InvariantChecker checker(&system);
  checker.ArmBlackBox(dump_path.path());
  LoggedRun run(&system);

  // Corrupt the 10th record's value: the checker catches the retirement
  // mismatch mid-run and dumps on that first violation, while the flight
  // rings still hold the events leading up to it.
  ScriptedFaultInjector injector;
  injector.ArmCorruption(run.log->log_index, 10,
                         [](LogRecord* record) { record->value ^= 0xdead; });
  system.bus_logger()->set_fault_injector(&injector);
  run.Write(200);
  checker.CheckDrained();
  ASSERT_FALSE(checker.ok());

  BlackBoxDump dump;
  std::string error;
  ASSERT_TRUE(obs::LoadBlackBoxDump(dump_path.path(), &dump, &error)) << error;
  EXPECT_EQ(dump.cause, "invariant_violation");
  ASSERT_FALSE(dump.violations.empty());

  // The timeline's newest events include the violation, attributed to the
  // logger component.
  bool saw_violation = false;
  for (const obs::BlackBoxEvent& e : dump.events) {
    if (e.kind == "invariant_violation") {
      saw_violation = true;
      EXPECT_EQ(e.component, "logger");
    }
  }
  EXPECT_TRUE(saw_violation);
  EXPECT_NE(obs::RenderTimeline(dump).find("invariant_violation"), std::string::npos);
}

TEST(BlackBoxTest, ViolationEventsRecordedEvenWhenUnarmed) {
  LvmSystem system;
  InvariantChecker checker(&system);  // No ArmBlackBox.
  LoggedRun run(&system);
  ScriptedFaultInjector injector;
  injector.ArmCorruption(run.log->log_index, 5,
                         [](LogRecord* record) { record->value ^= 0xbad; });
  system.bus_logger()->set_fault_injector(&injector);
  run.Write(50);
  checker.CheckDrained();
  ASSERT_FALSE(checker.ok());
  bool saw = false;
  for (const FlightEvent& e : system.flight().MergedEvents()) {
    saw = saw || e.kind == FlightEventKind::kInvariantViolation;
  }
  EXPECT_TRUE(saw);
}

// --- post-mortem tail replay cross-check ---

// Converts a dumped log section to the verifier's input types.
std::pair<std::vector<LogRecord>, std::vector<std::pair<PhysAddr, std::vector<uint8_t>>>>
ConvertLog(const obs::BlackBoxLog& log) {
  std::vector<LogRecord> records;
  for (const obs::BlackBoxRecord& r : log.tail_records) {
    LogRecord record;
    record.addr = static_cast<uint32_t>(r.addr);
    record.value = static_cast<uint32_t>(r.value);
    record.size = static_cast<uint16_t>(r.size);
    record.flags = static_cast<uint16_t>(r.flags);
    record.timestamp = static_cast<uint32_t>(r.timestamp);
    records.push_back(record);
  }
  std::vector<std::pair<PhysAddr, std::vector<uint8_t>>> memory;
  for (const obs::BlackBoxMemoryExtent& extent : log.memory) {
    memory.emplace_back(static_cast<PhysAddr>(extent.addr), extent.bytes);
  }
  return {std::move(records), std::move(memory)};
}

TEST(BlackBoxTest, CleanRunTailReplayMatchesMemory) {
  LvmSystem system;
  LoggedRun run(&system);
  run.Write(200);
  std::string json = system.BlackBoxJson("manual", "", {});
  BlackBoxDump dump;
  ASSERT_TRUE(obs::ParseBlackBoxDump(json, &dump));
  ASSERT_EQ(dump.logs.size(), 1u);
  auto [records, memory] = ConvertLog(dump.logs[0]);
  ASSERT_FALSE(memory.empty());
  EXPECT_TRUE(LogReplayVerifier::CrossCheckTail(records, memory).empty());
}

TEST(BlackBoxTest, DroppedRecordSurfacesAsTailReplayMismatch) {
  LvmSystem system;
  LoggedRun run(&system);
  ScriptedFaultInjector injector;
  // Write the same word twice; drop the record of the *second* write. The
  // tail then replays the first value while memory holds the second.
  injector.Arm(run.log->log_index, 1, LogFaultInjector::Action::kDropRecord);
  system.bus_logger()->set_fault_injector(&injector);
  Cpu& cpu = system.cpu();
  cpu.Write(run.base, 0x11111111u);
  cpu.Compute(300);
  cpu.Write(run.base, 0x22222222u);
  cpu.Compute(300);
  system.SyncLog(&cpu, run.log);

  BlackBoxDump dump;
  ASSERT_TRUE(obs::ParseBlackBoxDump(system.BlackBoxJson("manual", "", {}), &dump));
  ASSERT_EQ(dump.logs.size(), 1u);
  auto [records, memory] = ConvertLog(dump.logs[0]);
  std::vector<ReplayMismatch> mismatches = LogReplayVerifier::CrossCheckTail(records, memory);
  ASSERT_FALSE(mismatches.empty());
  EXPECT_EQ(mismatches[0].replayed, 0x11);
  EXPECT_EQ(mismatches[0].actual, 0x22);
}

TEST(BlackBoxTest, CrossCheckSkipsBytesOutsideExtents) {
  LogRecord record;
  record.addr = 0x1000;
  record.value = 0xdeadbeef;
  record.size = 4;
  // Extent covers a different range: nothing checkable, no mismatch.
  std::vector<std::pair<PhysAddr, std::vector<uint8_t>>> memory;
  memory.emplace_back(0x2000, std::vector<uint8_t>(16, 0));
  EXPECT_TRUE(LogReplayVerifier::CrossCheckTail({record}, memory).empty());
}

// --- crash handler ---

using BlackBoxDeathTest = ::testing::Test;

TEST(BlackBoxDeathTest, CheckFailureWritesDumpBeforeAbort) {
  ScopedDumpPath dump_path;
  EXPECT_DEATH(
      {
        LvmSystem system;
        LoggedRun run(&system);
        run.Write(20);
        system.InstallCrashHandler(dump_path.path());
        LVM_CHECK_MSG(false, "blackbox death test");
      },
      "blackbox death test");
  // The child dumped before aborting.
  BlackBoxDump dump;
  std::string error;
  ASSERT_TRUE(obs::LoadBlackBoxDump(dump_path.path(), &dump, &error)) << error;
  EXPECT_EQ(dump.cause, "check_failure");
  EXPECT_GT(dump.events_recorded, 0u);
}

TEST(BlackBoxDeathTest, FatalSignalWritesDumpBeforeDying) {
#if defined(__SANITIZE_THREAD__)
  // TSan installs its own fatal-signal handlers and flags the dump's
  // allocations as signal-unsafe, racing our handler nondeterministically.
  GTEST_SKIP() << "fatal-signal capture is not testable under TSan";
#endif
  ScopedDumpPath dump_path;
  EXPECT_DEATH(
      {
        LvmSystem system;
        LoggedRun run(&system);
        run.Write(20);
        system.InstallCrashHandler(dump_path.path());
        std::raise(SIGSEGV);
      },
      "");
  BlackBoxDump dump;
  std::string error;
  ASSERT_TRUE(obs::LoadBlackBoxDump(dump_path.path(), &dump, &error)) << error;
  EXPECT_EQ(dump.cause, "signal");
  EXPECT_EQ(dump.cause_detail, "SIGSEGV");
}

// --- parallel engine events land in the dump ---

TEST(BlackBoxTest, EngineStartAndJoinAppearOnKernelRing) {
  LvmConfig config;
  config.num_cpus = 2;
  LvmSystem system(config);
  AddressSpace* as = system.CreateAddressSpace();
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  std::vector<VirtAddr> bases;
  for (int i = 0; i < 2; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(kPageSize));
    bases.push_back(as->BindRegion(region));
    LogSegment* log = system.CreateLogSegment(4);
    system.AttachLog(region, log);
    regions.push_back(region);
    logs.push_back(log);
  }
  for (int i = 0; i < 2; ++i) {
    system.Activate(as, i);
    system.TouchRegion(&system.cpu(i), regions[static_cast<size_t>(i)]);
  }

  par::EngineConfig engine_config;
  engine_config.mode = par::Mode::kParallel;
  par::ParallelEngine engine(&system, engine_config);
  for (int i = 0; i < 2; ++i) {
    VirtAddr base = bases[static_cast<size_t>(i)];
    engine.AddWorker(logs[static_cast<size_t>(i)], [base](Cpu& cpu, uint64_t step) {
      cpu.Write(base + 4 * (step % (kPageSize / 4)), static_cast<uint32_t>(step));
      cpu.Compute(100);
      return step + 1 < 100;
    });
  }
  engine.Start();
  engine.Join();

  bool saw_start = false;
  bool saw_join = false;
  for (const FlightEvent& e : system.flight().MergedEvents()) {
    if (e.kind == FlightEventKind::kEngineStart) {
      saw_start = true;
      EXPECT_EQ(e.ring, system.flight().kernel_ring());
      EXPECT_EQ(e.a0, 2u);
    }
    saw_join = saw_join || e.kind == FlightEventKind::kEngineJoin;
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_join);
}

}  // namespace
}  // namespace lvm
