// Tests of incremental log consumption (LogStream) and the host-side
// transactional region.
#include <gtest/gtest.h>

#include <cstring>

#include "src/hostlvm/host_transaction.h"
#include "src/lvm/log_stream.h"

namespace lvm {
namespace {

class LogStreamTest : public ::testing::Test {
 protected:
  LogStreamTest() {
    segment_ = system_.CreateSegment(4 * kPageSize);
    region_ = system_.CreateRegion(segment_);
    log_ = system_.CreateLogSegment();
    as_ = system_.CreateAddressSpace();
    base_ = as_->BindRegion(region_);
    system_.AttachLog(region_, log_);
    system_.Activate(as_);
  }

  LvmSystem system_;
  StdSegment* segment_ = nullptr;
  Region* region_ = nullptr;
  LogSegment* log_ = nullptr;
  AddressSpace* as_ = nullptr;
  VirtAddr base_ = 0;
};

TEST_F(LogStreamTest, ConsumesEachRecordOnce) {
  Cpu& cpu = system_.cpu();
  LogStream stream(&system_, log_);
  cpu.Write(base_, 1);
  cpu.Write(base_ + 4, 2);
  EXPECT_EQ(stream.Refresh(&cpu), 2u);
  EXPECT_EQ(stream.Next().value, 1u);
  EXPECT_EQ(stream.Next().value, 2u);
  EXPECT_FALSE(stream.HasNext());

  cpu.Write(base_ + 8, 3);
  EXPECT_EQ(stream.Refresh(&cpu), 1u);
  EXPECT_EQ(stream.Next().value, 3u);
  EXPECT_EQ(stream.position(), 3u);
}

TEST_F(LogStreamTest, InterleavedProduceConsume) {
  Cpu& cpu = system_.cpu();
  LogStream stream(&system_, log_);
  uint32_t consumed_sum = 0;
  uint32_t produced_sum = 0;
  for (uint32_t round = 1; round <= 50; ++round) {
    cpu.Write(base_ + 4 * (round % 512), round);
    produced_sum += round;
    cpu.Compute(200);
    if (round % 7 == 0) {
      stream.Refresh(&cpu);
      while (stream.HasNext()) {
        consumed_sum += stream.Next().value;
      }
    }
  }
  stream.Refresh(&cpu);
  while (stream.HasNext()) {
    consumed_sum += stream.Next().value;
  }
  EXPECT_EQ(consumed_sum, produced_sum);
}

TEST_F(LogStreamTest, RebaseAfterCompaction) {
  Cpu& cpu = system_.cpu();
  LogStream stream(&system_, log_);
  cpu.Write(base_, 1);
  cpu.Write(base_ + 4, 2);
  stream.Refresh(&cpu);
  stream.Next();
  stream.Next();
  // The producer drops the consumed prefix.
  system_.CompactLog(&cpu, log_, stream.Consumable());
  stream.Rebase();
  cpu.Write(base_ + 8, 3);
  EXPECT_EQ(stream.Refresh(&cpu), 1u);
  EXPECT_EQ(stream.Next().value, 3u);
}

TEST(HostTransactionTest, CommitReportsWordUpdates) {
  HostTransactionalRegion region(8);
  auto* words = region.data<uint32_t>();
  region.Begin();
  words[0] = 5;
  words[1024 + 2] = 7;  // Page 1.
  auto updates = region.Commit();
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[0].offset, 0u);
  EXPECT_EQ(updates[0].value, 5u);
  EXPECT_EQ(updates[1].offset, 4096u + 8);
  EXPECT_EQ(updates[1].value, 7u);
}

TEST(HostTransactionTest, AbortRollsBack) {
  HostTransactionalRegion region(4);
  auto* words = region.data<uint32_t>();
  region.Begin();
  words[3] = 11;
  region.Commit();
  region.Begin();
  words[3] = 99;
  words[500] = 1;
  region.Abort();
  EXPECT_EQ(words[3], 11u);
  EXPECT_EQ(words[500], 0u);
}

TEST(HostTransactionTest, ManyTransactionsWithStruct) {
  struct Account {
    uint32_t balance;
    uint32_t version;
  };
  HostTransactionalRegion region(4);
  auto* accounts = region.data<Account>();
  uint32_t committed_balance = 0;
  for (uint32_t tx = 1; tx <= 20; ++tx) {
    region.Begin();
    accounts[0].balance += tx;
    accounts[0].version = tx;
    if (tx % 3 == 0) {
      region.Abort();
    } else {
      region.Commit();
      committed_balance += tx;
    }
  }
  EXPECT_EQ(accounts[0].balance, committed_balance);
  EXPECT_EQ(region.commits(), 14u);
  EXPECT_EQ(region.aborts(), 6u);
}

TEST(HostTransactionTest, WriteBackSameValueProducesNoRedo) {
  HostTransactionalRegion region(2);
  auto* words = region.data<uint32_t>();
  region.Begin();
  words[0] = 42;
  region.Commit();
  region.Begin();
  words[0] = 43;
  words[0] = 42;  // Net no-op.
  auto updates = region.Commit();
  EXPECT_TRUE(updates.empty());
  EXPECT_EQ(words[0], 42u);
}

}  // namespace
}  // namespace lvm
