// Stress and corner-case tests of the logger hardware paths: direct-mapped
// page-mapping-table displacement, bus contention from log-record DMA,
// resource exhaustion, and the parallel engine under overload and
// concurrent stats readers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/par/engine.h"

namespace lvm {
namespace {

TEST(PmtDisplacementTest, ConflictingPagesThrashButLoseNothing) {
  // The page mapping table is direct mapped on the low 15 bits of the page
  // number: two pages 128 MB apart share a slot and displace each other
  // (Section 3.1.1). Alternating writes force a mapping fault per switch;
  // every record must still be captured.
  LvmConfig config;
  config.memory_size = 192u << 20;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();

  // Push the frame allocator 128 MB forward so the second data page's
  // frame conflicts with the first's.
  StdSegment* filler = system.CreateSegment(128u << 20);
  StdSegment* data = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(data);
  LogSegment* log = system.CreateLogSegment(16);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);

  // Materialize page 0's frame, then enough filler frames that the next
  // allocation lands 128 MB later in the same direct-mapped slot, then
  // page 1's frame.
  cpu.Write(base, 0);
  PhysAddr frame0_addr = data->FrameAt(0);
  uint32_t page = 0;
  PhysAddr last = 0;
  do {
    last = filler->EnsureFrame(page++);
  } while (PageMappingTable::IndexOf(last + kPageSize) !=
               PageMappingTable::IndexOf(frame0_addr) ||
           PageMappingTable::TagOf(last + kPageSize) == PageMappingTable::TagOf(frame0_addr));
  cpu.Write(base + kPageSize, 0);
  PhysAddr frame0 = data->FrameAt(0);
  PhysAddr frame1 = data->FrameAt(1);
  ASSERT_EQ(PageMappingTable::IndexOf(frame0), PageMappingTable::IndexOf(frame1));
  ASSERT_NE(PageMappingTable::TagOf(frame0), PageMappingTable::TagOf(frame1));

  uint64_t faults_before = system.logging_faults_handled();
  constexpr uint32_t kRounds = 50;
  for (uint32_t i = 0; i < kRounds; ++i) {
    cpu.Write(base + 4 * i, 2 * i);
    cpu.Compute(300);
    cpu.Write(base + kPageSize + 4 * i, 2 * i + 1);
    cpu.Compute(300);
  }
  system.SyncLog(&cpu, log);

  // Every alternation displaced the other page's entry: ~one mapping fault
  // per logged write after the first.
  EXPECT_GT(system.logging_faults_handled() - faults_before, kRounds);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), 2 * kRounds + 2);
  for (uint32_t i = 0; i < kRounds; ++i) {
    EXPECT_EQ(reader.At(2 + 2 * i).value, 2 * i);
    EXPECT_EQ(reader.At(2 + 2 * i + 1).value, 2 * i + 1);
  }
}

TEST(BusContentionTest, DmaContendsWhenEnabled) {
  auto run = [](bool contend) {
    LvmConfig config;
    config.params.dma_contends_bus = contend;
    LvmSystem system(config);
    Cpu& cpu = system.cpu();
    StdSegment* segment = system.CreateSegment(8 * kPageSize);
    Region* region = system.CreateRegion(segment);
    LogSegment* log = system.CreateLogSegment(32);
    AddressSpace* as = system.CreateAddressSpace();
    VirtAddr base = as->BindRegion(region);
    system.AttachLog(region, log);
    system.Activate(as);
    system.TouchRegion(&cpu, region);
    for (uint32_t i = 0; i < 1000; ++i) {
      cpu.Write(base + 4 * (i % 1024), i);
      cpu.Compute(50);
    }
    system.SyncLog(&cpu, log);
    LogReader reader(system.memory(), *log);
    EXPECT_EQ(reader.size(), 1000u);
    return system.machine().bus().busy_cycles();
  };
  uint64_t without = run(false);
  uint64_t with = run(true);
  // The DMA's 8 bus cycles per record appear as extra bus occupancy.
  EXPECT_GE(with, without + 1000ull * 7);
}

TEST(ResourceExhaustionTest, LogTableFullAborts) {
  LvmSystem system;
  StdSegment* segment = system.CreateSegment(kPageSize);
  // The log table has 64 entries.
  for (int i = 0; i < 64; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(kPageSize));
    system.AttachLog(region, system.CreateLogSegment(1));
  }
  Region* one_too_many = system.CreateRegion(segment);
  EXPECT_DEATH(system.AttachLog(one_too_many, system.CreateLogSegment(1)),
               "log table is full");
}

TEST(ResourceExhaustionTest, PhysicalMemoryExhaustionAborts) {
  LvmConfig config;
  config.memory_size = 1u << 20;  // 256 frames.
  LvmSystem system(config);
  StdSegment* big = system.CreateSegment(2u << 20);
  EXPECT_DEATH(
      {
        for (uint32_t page = 0; page < big->page_count(); ++page) {
          big->EnsureFrame(page);
        }
      },
      "out of physical frames");
}

TEST(ResourceExhaustionTest, HugeLogGrowsAcrossManyPages) {
  // A long, paced run appends tens of pages of records without loss.
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(8 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(1);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  constexpr uint32_t kWrites = 20000;  // ~78 log pages.
  for (uint32_t i = 0; i < kWrites; ++i) {
    cpu.Write(base + 4 * (i % (2 * 1024)), i);
    cpu.Compute(60);
  }
  system.SyncLog(&cpu, log);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), kWrites);
  EXPECT_EQ(log->records_lost, 0u);
  EXPECT_GT(log->page_count(), 70u);
  // Spot checks across the whole span.
  EXPECT_EQ(reader.At(0).value, 0u);
  EXPECT_EQ(reader.At(kWrites / 2).value, kWrites / 2);
  EXPECT_EQ(reader.At(kWrites - 1).value, kWrites - 1);
}

TEST(ParallelOverloadStressTest, EveryWorkerSuspendsAndResumesExactlyOnce) {
  // Tiny shard rings plus unpaced writers force many overload events while
  // four free-running workers hammer their shards. The suspension protocol
  // must park and release every active worker exactly once per event — a
  // lost wakeup shows up as suspensions != resumes (or a hung test) — and
  // the drains must not lose records.
  constexpr int kWorkers = 4;
  constexpr uint32_t kWrites = 4000;
  LvmConfig config;
  config.num_cpus = kWorkers;
  LvmSystem system(config);
  AddressSpace* as = system.CreateAddressSpace();
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  std::vector<VirtAddr> bases;
  for (int i = 0; i < kWorkers; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(kPageSize));
    bases.push_back(as->BindRegion(region));
    LogSegment* log = system.CreateLogSegment(4);
    system.AttachLog(region, log);
    regions.push_back(region);
    logs.push_back(log);
  }
  for (int i = 0; i < kWorkers; ++i) {
    system.Activate(as, i);
  }

  par::EngineConfig engine_config;
  engine_config.mode = par::Mode::kParallel;
  par::ShardConfig shard;
  shard.ring_capacity = 128;
  shard.overload_threshold = 64;
  engine_config.shard = shard;
  par::ParallelEngine engine(&system, engine_config);
  engine.RegisterMetrics();
  for (int i = 0; i < kWorkers; ++i) {
    system.TouchRegion(&system.cpu(i), regions[i]);
    VirtAddr base = bases[i];
    engine.AddWorker(logs[i], [base](Cpu& cpu, uint64_t step) {
      // No compute pacing: the ring fills far faster than the service rate.
      cpu.Write(base + 4 * (step % 1024), static_cast<uint32_t>(step));
      return step + 1 < kWrites;
    });
  }
  engine.Run();

  EXPECT_GT(engine.overload_events(), 0u);
  uint64_t total_suspensions = 0;
  for (int i = 0; i < kWorkers; ++i) {
    const par::ParallelEngine::WorkerStats& stats = engine.worker_stats(i);
    EXPECT_EQ(stats.suspensions, stats.resumes) << "worker " << i << " lost a wakeup";
    total_suspensions += stats.suspensions;
  }
  // Every event suspends at least its initiator.
  EXPECT_GE(total_suspensions, engine.overload_events());
  for (int i = 0; i < kWorkers; ++i) {
    LogReader reader(system.memory(), *logs[i]);
    ASSERT_EQ(reader.size(), kWrites) << "worker " << i;
    EXPECT_EQ(logs[i]->records_lost, 0u);
    // Program order survives the drains.
    EXPECT_EQ(reader.At(0).value, 0u);
    EXPECT_EQ(reader.At(kWrites - 1).value, kWrites - 1);
  }
}

TEST(ParallelStatsStressTest, GetStatsIsSafeWhileWorkersRun) {
  // Hammer GetStats() and TakeSnapshot() from the main thread while the
  // parallel workers run: every metric reads relaxed atomics, so the
  // snapshots must be tear-free (monotone counters) and race-free under
  // TSan.
  constexpr int kWorkers = 2;
  constexpr uint32_t kWrites = 30000;
  LvmConfig config;
  config.num_cpus = kWorkers;
  LvmSystem system(config);
  AddressSpace* as = system.CreateAddressSpace();
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  std::vector<VirtAddr> bases;
  for (int i = 0; i < kWorkers; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(kPageSize));
    bases.push_back(as->BindRegion(region));
    LogSegment* log = system.CreateLogSegment(4);
    system.AttachLog(region, log);
    regions.push_back(region);
    logs.push_back(log);
  }
  for (int i = 0; i < kWorkers; ++i) {
    system.Activate(as, i);
  }

  par::ParallelEngine engine(&system, par::EngineConfig{});
  engine.RegisterMetrics();
  std::atomic<int> done{0};
  for (int i = 0; i < kWorkers; ++i) {
    system.TouchRegion(&system.cpu(i), regions[i]);
    VirtAddr base = bases[i];
    engine.AddWorker(logs[i], [base, &done](Cpu& cpu, uint64_t step) {
      cpu.Write(base + 4 * (step % 1024), static_cast<uint32_t>(step));
      cpu.Compute(10);
      if (step + 1 < kWrites) {
        return true;
      }
      done.fetch_add(1, std::memory_order_release);
      return false;
    });
  }
  engine.Start();
  uint64_t last_writes = 0;
  uint64_t reads = 0;
  while (done.load(std::memory_order_acquire) < kWorkers) {
    LvmSystem::Stats stats = system.GetStats();
    EXPECT_GE(stats.writes, last_writes) << "writes counter went backwards";
    EXPECT_GE(stats.writes, stats.logged_writes);
    last_writes = stats.writes;
    obs::Snapshot snapshot = system.metrics().TakeSnapshot();
    // The snapshot is taken after GetStats, so the monotone counter can
    // only have grown.
    EXPECT_GE(snapshot.counter("cpu.writes"), last_writes);
    ++reads;
    std::this_thread::yield();
  }
  engine.Join();
  EXPECT_GT(reads, 0u);
  LvmSystem::Stats final_stats = system.GetStats();
  EXPECT_EQ(final_stats.writes, static_cast<uint64_t>(kWorkers) * kWrites);
  EXPECT_EQ(final_stats.logged_writes, static_cast<uint64_t>(kWorkers) * kWrites);
}

}  // namespace
}  // namespace lvm
