// Stress and corner-case tests of the logger hardware paths: direct-mapped
// page-mapping-table displacement, bus contention from log-record DMA, and
// resource exhaustion.
#include <gtest/gtest.h>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

TEST(PmtDisplacementTest, ConflictingPagesThrashButLoseNothing) {
  // The page mapping table is direct mapped on the low 15 bits of the page
  // number: two pages 128 MB apart share a slot and displace each other
  // (Section 3.1.1). Alternating writes force a mapping fault per switch;
  // every record must still be captured.
  LvmConfig config;
  config.memory_size = 192u << 20;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();

  // Push the frame allocator 128 MB forward so the second data page's
  // frame conflicts with the first's.
  StdSegment* filler = system.CreateSegment(128u << 20);
  StdSegment* data = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(data);
  LogSegment* log = system.CreateLogSegment(16);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);

  // Materialize page 0's frame, then enough filler frames that the next
  // allocation lands 128 MB later in the same direct-mapped slot, then
  // page 1's frame.
  cpu.Write(base, 0);
  PhysAddr frame0_addr = data->FrameAt(0);
  uint32_t page = 0;
  PhysAddr last = 0;
  do {
    last = filler->EnsureFrame(page++);
  } while (PageMappingTable::IndexOf(last + kPageSize) !=
               PageMappingTable::IndexOf(frame0_addr) ||
           PageMappingTable::TagOf(last + kPageSize) == PageMappingTable::TagOf(frame0_addr));
  cpu.Write(base + kPageSize, 0);
  PhysAddr frame0 = data->FrameAt(0);
  PhysAddr frame1 = data->FrameAt(1);
  ASSERT_EQ(PageMappingTable::IndexOf(frame0), PageMappingTable::IndexOf(frame1));
  ASSERT_NE(PageMappingTable::TagOf(frame0), PageMappingTable::TagOf(frame1));

  uint64_t faults_before = system.logging_faults_handled();
  constexpr uint32_t kRounds = 50;
  for (uint32_t i = 0; i < kRounds; ++i) {
    cpu.Write(base + 4 * i, 2 * i);
    cpu.Compute(300);
    cpu.Write(base + kPageSize + 4 * i, 2 * i + 1);
    cpu.Compute(300);
  }
  system.SyncLog(&cpu, log);

  // Every alternation displaced the other page's entry: ~one mapping fault
  // per logged write after the first.
  EXPECT_GT(system.logging_faults_handled() - faults_before, kRounds);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), 2 * kRounds + 2);
  for (uint32_t i = 0; i < kRounds; ++i) {
    EXPECT_EQ(reader.At(2 + 2 * i).value, 2 * i);
    EXPECT_EQ(reader.At(2 + 2 * i + 1).value, 2 * i + 1);
  }
}

TEST(BusContentionTest, DmaContendsWhenEnabled) {
  auto run = [](bool contend) {
    LvmConfig config;
    config.params.dma_contends_bus = contend;
    LvmSystem system(config);
    Cpu& cpu = system.cpu();
    StdSegment* segment = system.CreateSegment(8 * kPageSize);
    Region* region = system.CreateRegion(segment);
    LogSegment* log = system.CreateLogSegment(32);
    AddressSpace* as = system.CreateAddressSpace();
    VirtAddr base = as->BindRegion(region);
    system.AttachLog(region, log);
    system.Activate(as);
    system.TouchRegion(&cpu, region);
    for (uint32_t i = 0; i < 1000; ++i) {
      cpu.Write(base + 4 * (i % 1024), i);
      cpu.Compute(50);
    }
    system.SyncLog(&cpu, log);
    LogReader reader(system.memory(), *log);
    EXPECT_EQ(reader.size(), 1000u);
    return system.machine().bus().busy_cycles();
  };
  uint64_t without = run(false);
  uint64_t with = run(true);
  // The DMA's 8 bus cycles per record appear as extra bus occupancy.
  EXPECT_GE(with, without + 1000ull * 7);
}

TEST(ResourceExhaustionTest, LogTableFullAborts) {
  LvmSystem system;
  StdSegment* segment = system.CreateSegment(kPageSize);
  // The log table has 64 entries.
  for (int i = 0; i < 64; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(kPageSize));
    system.AttachLog(region, system.CreateLogSegment(1));
  }
  Region* one_too_many = system.CreateRegion(segment);
  EXPECT_DEATH(system.AttachLog(one_too_many, system.CreateLogSegment(1)),
               "log table is full");
}

TEST(ResourceExhaustionTest, PhysicalMemoryExhaustionAborts) {
  LvmConfig config;
  config.memory_size = 1u << 20;  // 256 frames.
  LvmSystem system(config);
  StdSegment* big = system.CreateSegment(2u << 20);
  EXPECT_DEATH(
      {
        for (uint32_t page = 0; page < big->page_count(); ++page) {
          big->EnsureFrame(page);
        }
      },
      "out of physical frames");
}

TEST(ResourceExhaustionTest, HugeLogGrowsAcrossManyPages) {
  // A long, paced run appends tens of pages of records without loss.
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(8 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(1);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  constexpr uint32_t kWrites = 20000;  // ~78 log pages.
  for (uint32_t i = 0; i < kWrites; ++i) {
    cpu.Write(base + 4 * (i % (2 * 1024)), i);
    cpu.Compute(60);
  }
  system.SyncLog(&cpu, log);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), kWrites);
  EXPECT_EQ(log->records_lost, 0u);
  EXPECT_GT(log->page_count(), 70u);
  // Spot checks across the whole span.
  EXPECT_EQ(reader.At(0).value, 0u);
  EXPECT_EQ(reader.At(kWrites / 2).value, kWrites / 2);
  EXPECT_EQ(reader.At(kWrites - 1).value, kWrites - 1);
}

}  // namespace
}  // namespace lvm
