// The static ⊇ dynamic cross-check (DESIGN.md §16): drive real concurrency —
// a free-running parallel engine through overload events, a deterministic
// race-provoking run, metrics snapshots mid-flight, and a durable-WAL
// commit/checkpoint workload — with the LockOrderWitness enabled, then run
// the lvm-analyze engine over the repo's real src/ tree and assert that
// every lock-order edge the witness observed is present in the static
// graph, and that no acquisition ran against the declared rank order.
//
// This is the test that keeps the analyzer honest: a call-resolution
// heuristic that drops a real nesting path shows up here as a dynamic edge
// with no static counterpart.
#include <atomic>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/base/lock_witness.h"
#include "src/lvm/lvm_system.h"
#include "src/par/engine.h"
#include "src/hostlvm/durable_region.h"
#include "tools/lvm_analyze/analyze.h"

namespace lvm {
namespace {

// Free-running parallel engine pushed through overload suspensions: the
// initiator drains shards, charges the kernel overhead, and runs the race
// detector's global barrier — the deepest lock nesting the engine has.
void RunParallelOverloadWorkload() {
  constexpr int kWorkers = 3;
  constexpr uint32_t kWrites = 4000;
  LvmConfig config;
  config.num_cpus = kWorkers;
  LvmSystem system(config);
  system.EnableRaceDetection();
  AddressSpace* as = system.CreateAddressSpace();
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  std::vector<VirtAddr> bases;
  for (int i = 0; i < kWorkers; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(kPageSize));
    bases.push_back(as->BindRegion(region));
    LogSegment* log = system.CreateLogSegment(4);
    system.AttachLog(region, log);
    regions.push_back(region);
    logs.push_back(log);
  }
  for (int i = 0; i < kWorkers; ++i) {
    system.Activate(as, i);
  }

  par::EngineConfig engine_config;
  engine_config.mode = par::Mode::kParallel;
  par::ShardConfig shard;
  shard.ring_capacity = 128;
  shard.overload_threshold = 64;
  engine_config.shard = shard;
  par::ParallelEngine engine(&system, engine_config);
  engine.RegisterMetrics();
  for (int i = 0; i < kWorkers; ++i) {
    system.TouchRegion(&system.cpu(i), regions[i]);
    VirtAddr base = bases[i];
    engine.AddWorker(logs[i], [base](Cpu& cpu, uint64_t step) {
      cpu.Write(base + 4 * (step % 1024), static_cast<uint32_t>(step));
      return step + 1 < kWrites;
    });
  }
  engine.Start();
  // Snapshot mid-run: the registry lock nests the flight-ring occupancy
  // callback — the declared edge the static graph carries by comment.
  for (int i = 0; i < 50; ++i) {
    (void)system.metrics().TakeSnapshot();
  }
  engine.Join();
  ASSERT_GT(engine.overload_events(), 0u);
}

// Deterministic two-worker run racing on a shared word: the report path
// exercises the race detector's full stripe → report → trail nesting.
void RunRaceReportWorkload() {
  LvmConfig config;
  config.num_cpus = 2;
  LvmSystem system(config);
  system.EnableRaceDetection();
  StdSegment* segment = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(16);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as, 0);
  system.Activate(as, 1);

  par::EngineConfig engine_config;
  engine_config.mode = par::Mode::kDeterministic;
  engine_config.seed = 42;
  engine_config.publish_token_sync = false;
  par::ParallelEngine engine(&system, engine_config);
  const VirtAddr shared = base + 8;
  for (int worker = 0; worker < 2; ++worker) {
    VirtAddr mine = base + kPageSize + 64u * static_cast<VirtAddr>(worker);
    engine.AddWorker(nullptr, [shared, mine](Cpu& cpu, uint64_t step) {
      cpu.Write(shared, static_cast<uint32_t>(step));
      cpu.Write(mine, static_cast<uint32_t>(step));
      cpu.Compute(50);
      return step + 1 < 40;
    });
  }
  engine.Run();
  ASSERT_FALSE(system.GetRaceReports().empty());
}

// Durable-WAL workload: transactional commits, durability barriers, and a
// checkpoint — the serialized flush-under-lock tail.
void RunWalWorkload() {
  const std::string dir = testing::TempDir() + "lockgraph_witness_wal";
  DurableRegionOptions options;
  std::string error;
  auto region = DurableTransactionalRegion::Open(dir, options, &error);
  ASSERT_NE(region, nullptr) << error;
  for (uint32_t i = 0; i < 32; ++i) {
    region->Begin();
    // += so the word diff is never empty, even over a reopened image.
    region->data<uint32_t>()[i % 64] += i + 1;
    ASSERT_NE(region->Commit(), 0u);
  }
  region->Sync();
  region->Checkpoint();
}

TEST(LockGraphWitness, EveryDynamicEdgeIsInTheStaticGraph) {
  LockOrderWitness::Reset();
  LockOrderWitness::Enable();
  RunParallelOverloadWorkload();
  RunRaceReportWorkload();
  RunWalWorkload();
  LockOrderWitness::Disable();

  // No acquisition ran against the declared rank order.
  for (const auto& v : LockOrderWitness::Violations()) {
    ADD_FAILURE() << "rank violation: " << v.held << " held while acquiring " << v.acquired
                  << " (" << v.count << "x)";
  }

  const std::vector<LockOrderWitness::Edge> dynamic = LockOrderWitness::Edges();
  ASSERT_GE(dynamic.size(), 3u) << "workloads exercised too little nesting to mean anything";

  analyze::AnalysisResult result;
  std::string error;
  ASSERT_TRUE(analyze::AnalyzePaths({std::string(LVM_SOURCE_ROOT) + "/src"}, analyze::AnalyzeOptions{},
                                    &result, &error))
      << error;
  std::set<std::pair<std::string, std::string>> static_edges;
  for (const analyze::LockEdge& e : result.edges) {
    static_edges.insert({e.from, e.to});
  }
  std::set<std::string> static_locks(result.lock_ids.begin(), result.lock_ids.end());

  for (const LockOrderWitness::Edge& e : dynamic) {
    EXPECT_TRUE(static_edges.count({e.from, e.to}))
        << "witness saw " << e.from << " -> " << e.to << " (" << e.count
        << "x) but the static graph has no such edge: the analyzer missed a path";
  }
  // Every named runtime lock must be a lock the analyzer knows, under the
  // exact canonical id — otherwise edges could never be compared.
  for (const auto& lock : LockOrderWitness::Locks()) {
    EXPECT_TRUE(static_locks.count(lock.name))
        << "runtime lock " << lock.name << " is not a statically known lock id";
  }
}

}  // namespace
}  // namespace lvm
