// LockOrderWitness unit tests: edge recording, rank-violation detection on a
// provoked out-of-order acquisition, the TryLock exemption, and the strict
// lvm.lockgraph.v1 export.
#include "src/base/lock_witness.h"

#include <string>

#include "gtest/gtest.h"
#include "src/base/mutex.h"

namespace lvm {
namespace {

class WitnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockOrderWitness::Reset();
    LockOrderWitness::Enable();
  }
  void TearDown() override {
    LockOrderWitness::Disable();
    LockOrderWitness::Reset();
  }
};

bool HasEdge(const std::string& from, const std::string& to) {
  for (const auto& e : LockOrderWitness::Edges()) {
    if (e.from == from && e.to == to) {
      return true;
    }
  }
  return false;
}

TEST_F(WitnessTest, NestedAcquisitionRecordsAnEdge) {
  Mutex outer("T::outer", 10);
  Mutex inner("T::inner", 20);
  {
    MutexLock lock(outer);
    MutexLock nested(inner);
  }
  EXPECT_TRUE(HasEdge("T::outer", "T::inner"));
  EXPECT_FALSE(HasEdge("T::inner", "T::outer"));
  EXPECT_TRUE(LockOrderWitness::Violations().empty());
}

TEST_F(WitnessTest, OutOfOrderAcquisitionIsAViolation) {
  Mutex outer("T::outer", 10);
  Mutex inner("T::inner", 20);
  {
    MutexLock lock(inner);  // Rank 20 first...
    MutexLock nested(outer);  // ...then 10: against the declared order.
  }
  const auto violations = LockOrderWitness::Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].held, "T::inner");
  EXPECT_EQ(violations[0].acquired, "T::outer");
  EXPECT_EQ(violations[0].count, 1u);
}

TEST_F(WitnessTest, EqualRanksAreAViolation) {
  // Two locks that can be held together must be strictly ordered.
  Mutex a("T::a", 10);
  Mutex b("T::b", 10);
  {
    MutexLock lock(a);
    MutexLock nested(b);
  }
  EXPECT_EQ(LockOrderWitness::Violations().size(), 1u);
}

TEST_F(WitnessTest, TryLockIsExemptFromIncomingEdges) {
  // TryLock is the sanctioned out-of-order primitive (crash-dump paths):
  // no incoming edge, no violation — but its outgoing constraints are real.
  Mutex outer("T::outer", 10);
  Mutex inner("T::inner", 20);
  {
    MutexLock lock(inner);
    ASSERT_TRUE(outer.TryLock());
    outer.Unlock();
  }
  EXPECT_FALSE(HasEdge("T::inner", "T::outer"));
  EXPECT_TRUE(LockOrderWitness::Violations().empty());

  // Outgoing: a normal acquisition under a TryLock-held lock still edges.
  {
    ASSERT_TRUE(outer.TryLock());
    MutexLock nested(inner);
    outer.Unlock();
  }
  EXPECT_TRUE(HasEdge("T::outer", "T::inner"));
}

TEST_F(WitnessTest, AnonymousMutexesStayOutOfTheGraph) {
  Mutex named("T::named", 10);
  Mutex anonymous;
  {
    MutexLock lock(anonymous);
    MutexLock nested(named);
  }
  EXPECT_TRUE(LockOrderWitness::Edges().empty());
  EXPECT_EQ(LockOrderWitness::Locks().size(), 1u);
}

TEST_F(WitnessTest, DisabledWitnessRecordsNothing) {
  LockOrderWitness::Disable();
  Mutex outer("T::outer", 10);
  Mutex inner("T::inner", 20);
  {
    MutexLock lock(inner);
    MutexLock nested(outer);
  }
  EXPECT_TRUE(LockOrderWitness::Edges().empty());
  EXPECT_TRUE(LockOrderWitness::Violations().empty());
}

TEST_F(WitnessTest, RepeatedEdgesCount) {
  Mutex outer("T::outer", 10);
  Mutex inner("T::inner", 20);
  for (int i = 0; i < 3; ++i) {
    MutexLock lock(outer);
    MutexLock nested(inner);
  }
  const auto edges = LockOrderWitness::Edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].count, 3u);
}

TEST_F(WitnessTest, JsonExportCarriesSchemaAndEdges) {
  Mutex outer("T::outer", 10);
  Mutex inner("T::inner", 20);
  {
    MutexLock lock(outer);
    MutexLock nested(inner);
  }
  const std::string json = LockOrderWitness::LockGraphJson();
  EXPECT_NE(json.find("\"schema\":\"lvm.lockgraph.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"witness\""), std::string::npos);
  EXPECT_NE(json.find("\"from\":\"T::outer\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos);
}

}  // namespace
}  // namespace lvm
