// Fixture: a custom RAII guard discovered through its LVM_ACQUIRE(mu)
// constructor annotation. The opposite-order acquisitions below are only
// visible if the analyzer learned SpinGuard is a guard.
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"

namespace lvm {

class LVM_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(Mutex& mu) LVM_ACQUIRE(mu);
  ~SpinGuard() LVM_RELEASE();
};

class Pair {
 public:
  void Forward() {
    SpinGuard lock(a_);
    SpinGuard inner(b_);
    ++touches_;
  }

  void Backward() {
    SpinGuard lock(b_);
    SpinGuard inner(a_);
    ++touches_;
  }

 private:
  Mutex a_;
  Mutex b_;
  int touches_ = 0;
};

}  // namespace lvm
