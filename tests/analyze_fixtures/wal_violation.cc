// Fixture: a WAL-scope function mutates persistent bytes and returns without
// a flush barrier — and no caller orders one after it. Loaded with a virtual
// src/hostlvm/ path so the persist-ordering rule applies.
#include <cstring>

namespace lvm {

class MiniArena {
 public:
  void WriteHeaderTorn(const void* bytes) {
    std::memcpy(raw_block_bytes(0), bytes, 16);
  }

  unsigned char* raw_block_bytes(int block);
};

}  // namespace lvm
