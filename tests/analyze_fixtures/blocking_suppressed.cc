// Fixture: a deliberate block-under-lock fenced with an allow() comment —
// durability under the lock is this function's contract.
#include "src/base/mutex.h"

namespace lvm {

class Store {
 public:
  void FlushHoldingLock(int fd) {
    MutexLock lock(mu_);
    ++flushes_;
    fsync(fd);  // lvm-analyze: allow(lock-blocking)
  }

 private:
  Mutex mu_;
  int flushes_ = 0;
};

}  // namespace lvm
