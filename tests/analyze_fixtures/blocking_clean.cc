// Fixture: blocking done right — CondVar::Wait is exempt with respect to
// the mutex it releases, and the fsync runs with nothing held.
#include "src/base/mutex.h"

namespace lvm {

class Queue {
 public:
  void WaitNotEmpty() {
    MutexLock lock(mu_);
    while (empty_) {
      cv_.Wait(mu_);
    }
  }

  void FlushUnlocked(int fd) { fsync(fd); }

 private:
  Mutex mu_;
  CondVar cv_;
  bool empty_ = true;
};

}  // namespace lvm
