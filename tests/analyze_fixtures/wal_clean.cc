// Fixture: persistent mutations correctly ordered behind flush barriers —
// one function syncs itself, the other is a dirty helper whose caller
// orders the barrier after the call.
#include <cstring>

namespace lvm {

class MiniArena {
 public:
  void WriteHeaderDurable(const void* bytes) {
    std::memcpy(raw_block_bytes(0), bytes, 16);
    Sync();
  }

  void StageHeader(const void* bytes) {
    std::memcpy(raw_block_bytes(1), bytes, 16);
  }

  void CommitStaged(const void* bytes) {
    StageHeader(bytes);
    Sync();
  }

  unsigned char* raw_block_bytes(int block);
  void Sync();
};

}  // namespace lvm
