// Fixture: two methods acquire the same pair of locks in opposite orders —
// the canonical static deadlock.
#include "src/base/mutex.h"

namespace lvm {

class Pair {
 public:
  void Forward() {
    MutexLock lock(a_);
    MutexLock inner(b_);
    ++touches_;
  }

  void Backward() {
    MutexLock lock(b_);
    MutexLock inner(a_);
    ++touches_;
  }

 private:
  Mutex a_;
  Mutex b_;
  int touches_ = 0;
};

}  // namespace lvm
