// Fixture: both paths acquire the pair in the same order — no cycle.
#include "src/base/mutex.h"

namespace lvm {

class Pair {
 public:
  void Forward() {
    MutexLock lock(a_);
    MutexLock inner(b_);
    ++touches_;
  }

  void AlsoForward() {
    MutexLock lock(a_);
    MutexLock inner(b_);
    --touches_;
  }

 private:
  Mutex a_;
  Mutex b_;
  int touches_ = 0;
};

}  // namespace lvm
