// Fixture: named, ranked locks whose acquisitions follow the declared order.
#include "src/base/mutex.h"

namespace lvm {

class Registry {
 public:
  void InOrder() {
    MutexLock lock(first_);
    MutexLock inner(second_);
    ++entries_;
  }

 private:
  Mutex first_{"Registry::first_", kRankFirst};
  Mutex second_{"Registry::second_", kRankSecond};
  int entries_ = 0;
};

}  // namespace lvm
