// Fixture: lock declarations contradicting the global order, three ways —
// a runtime name that differs from the canonical id, a rank naming no
// constant in the rank header, and an acquisition running against the
// declared rank order. The test supplies a virtual rank header declaring
// kRankFirst before kRankSecond.
#include "src/base/mutex.h"

namespace lvm {

class Registry {
 public:
  void AgainstOrder() {
    MutexLock lock(second_);
    MutexLock inner(first_);
    ++entries_;
  }

 private:
  Mutex first_{"Registry::first_", kRankFirst};
  Mutex second_{"Registry::second_", kRankSecond};
  Mutex misnamed_{"Registry::wrong_", kRankFirst};
  Mutex unranked_{"Registry::unranked_", kRankBogus};
  int entries_ = 0;
};

}  // namespace lvm
