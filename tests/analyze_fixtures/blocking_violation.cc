// Fixture: a mutex held across fsync — a blocking syscall under a lock.
#include "src/base/mutex.h"

namespace lvm {

class Store {
 public:
  void FlushHoldingLock(int fd) {
    MutexLock lock(mu_);
    ++flushes_;
    fsync(fd);
  }

 private:
  Mutex mu_;
  int flushes_ = 0;
};

}  // namespace lvm
