// Fixture: the deadlock only exists across a call — Outer holds first_ while
// a callee takes second_, and Reversed nests them the other way around.
// Catching it requires the interprocedural held-set propagation.
#include "src/base/mutex.h"

namespace lvm {

class Chain {
 public:
  void Outer() {
    MutexLock lock(first_);
    Inner();
  }

  void Inner() {
    MutexLock lock(second_);
    ++steps_;
  }

  void Reversed() {
    MutexLock lock(second_);
    MutexLock inner(first_);
    ++steps_;
  }

 private:
  Mutex first_;
  Mutex second_;
  int steps_ = 0;
};

}  // namespace lvm
