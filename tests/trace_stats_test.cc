// Tests of the address-trace analysis over LVM logs (Section 1).
#include <gtest/gtest.h>

#include "src/lvm/trace_stats.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

class TraceStatsTest : public ::testing::Test {
 protected:
  TraceStatsTest() {
    segment_ = system_.CreateSegment(8 * kPageSize);
    region_ = system_.CreateRegion(segment_);
    log_ = system_.CreateLogSegment();
    as_ = system_.CreateAddressSpace();
    base_ = as_->BindRegion(region_);
    system_.AttachLog(region_, log_);
    system_.Activate(as_);
  }

  LogReader Sync() {
    system_.SyncLog(&system_.cpu(), log_);
    return LogReader(system_.memory(), *log_);
  }

  LvmSystem system_;
  StdSegment* segment_ = nullptr;
  Region* region_ = nullptr;
  LogSegment* log_ = nullptr;
  AddressSpace* as_ = nullptr;
  VirtAddr base_ = 0;
};

TEST_F(TraceStatsTest, EmptyTrace) {
  TraceStats stats = AnalyzeTrace(Sync());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.unique_pages, 0u);
  EXPECT_EQ(stats.WritesPerKilotick(), 0.0);
}

TEST_F(TraceStatsTest, FootprintCounts) {
  Cpu& cpu = system_.cpu();
  // Four writes: two words in one line, one in another line same page, one
  // on another page.
  cpu.Write(base_ + 0, 1);
  cpu.Compute(1000);
  cpu.Write(base_ + 4, 2);
  cpu.Compute(1000);
  cpu.Write(base_ + 64, 3);
  cpu.Compute(1000);
  cpu.Write(base_ + kPageSize, 4);
  cpu.Compute(1000);
  TraceStats stats = AnalyzeTrace(Sync());
  EXPECT_EQ(stats.records, 4u);
  EXPECT_EQ(stats.bytes_written, 16u);
  EXPECT_EQ(stats.unique_words, 4u);
  EXPECT_EQ(stats.unique_lines, 3u);
  EXPECT_EQ(stats.unique_pages, 2u);
  EXPECT_EQ(stats.rewrites, 0u);
}

TEST_F(TraceStatsTest, RewritesDetected) {
  Cpu& cpu = system_.cpu();
  for (int i = 0; i < 10; ++i) {
    cpu.Write(base_, static_cast<uint32_t>(i));
    cpu.Compute(500);
  }
  TraceStats stats = AnalyzeTrace(Sync());
  EXPECT_EQ(stats.records, 10u);
  EXPECT_EQ(stats.unique_words, 1u);
  EXPECT_EQ(stats.rewrites, 9u);
}

TEST_F(TraceStatsTest, HottestPage) {
  Cpu& cpu = system_.cpu();
  for (int i = 0; i < 3; ++i) {
    cpu.Write(base_ + 4 * static_cast<uint32_t>(i), 1);
    cpu.Compute(500);
  }
  for (int i = 0; i < 7; ++i) {
    cpu.Write(base_ + 2 * kPageSize + 4 * static_cast<uint32_t>(i), 1);
    cpu.Compute(500);
  }
  TraceStats stats = AnalyzeTrace(Sync());
  EXPECT_EQ(stats.hottest_page, PageNumber(segment_->FrameAt(2)));
  EXPECT_EQ(stats.hottest_page_writes, 7u);
}

TEST_F(TraceStatsTest, BurstDetection) {
  Cpu& cpu = system_.cpu();
  // A tight burst of 8 writes, then widely spaced singles.
  for (int i = 0; i < 8; ++i) {
    cpu.Write(base_ + 4 * static_cast<uint32_t>(i), 1);
  }
  for (int i = 0; i < 5; ++i) {
    cpu.Compute(100000);
    cpu.Write(base_ + 512 + 4 * static_cast<uint32_t>(i), 1);
  }
  TraceStats stats = AnalyzeTrace(Sync(), /*burst_window=*/64);
  EXPECT_GE(stats.peak_burst, 8u);
  EXPECT_GT(stats.last_timestamp, stats.first_timestamp);
}

TEST_F(TraceStatsTest, WriteRate) {
  Cpu& cpu = system_.cpu();
  // One write every 400 cycles = 100 timestamp ticks: 10 per kilotick.
  for (int i = 0; i < 50; ++i) {
    cpu.Write(base_ + 4 * static_cast<uint32_t>(i), 1);
    cpu.Compute(394);  // ~400 including the write issue.
  }
  TraceStats stats = AnalyzeTrace(Sync());
  EXPECT_NEAR(stats.WritesPerKilotick(), 10.0, 1.5);
}

TEST_F(TraceStatsTest, CacheSimSequentialVsStrided) {
  Cpu& cpu = system_.cpu();
  // Sequential words: 4 writes share each line -> 25% miss rate.
  for (uint32_t i = 0; i < 512; ++i) {
    cpu.Write(base_ + 4 * i, i);
    cpu.Compute(100);
  }
  LogReader reader = Sync();
  TraceCacheResult sequential = SimulateTraceCache(reader, 256);
  EXPECT_EQ(sequential.accesses, 512u);
  EXPECT_NEAR(sequential.MissRate(), 0.25, 0.01);

  // Line-strided writes: every access a different line -> ~100% misses.
  system_.TruncateLog(&cpu, log_);
  for (uint32_t i = 0; i < 512; ++i) {
    cpu.Write(base_ + (i * kLineSize) % (8 * kPageSize), i);
    cpu.Compute(100);
  }
  LogReader strided_reader = Sync();
  TraceCacheResult strided = SimulateTraceCache(strided_reader, 256);
  EXPECT_GT(strided.MissRate(), 0.9);
}

TEST_F(TraceStatsTest, ReuseHistogramImmediateReuse) {
  Cpu& cpu = system_.cpu();
  for (int i = 0; i < 10; ++i) {
    cpu.Write(base_, static_cast<uint32_t>(i));  // Same line every time.
    cpu.Compute(100);
  }
  ReuseHistogram histogram = ComputeReuseHistogram(Sync());
  EXPECT_EQ(histogram.cold, 1u);
  EXPECT_EQ(histogram.buckets[0], 9u);  // Distance 0.
  EXPECT_DOUBLE_EQ(histogram.HitFraction(2), 0.9);
}

TEST_F(TraceStatsTest, ReuseHistogramCyclicPattern) {
  Cpu& cpu = system_.cpu();
  // Cycle over 8 distinct lines, 5 times: after the cold pass, every
  // access has stack distance 7.
  for (int round = 0; round < 5; ++round) {
    for (uint32_t line = 0; line < 8; ++line) {
      cpu.Write(base_ + line * kLineSize, line);
      cpu.Compute(100);
    }
  }
  ReuseHistogram histogram = ComputeReuseHistogram(Sync());
  EXPECT_EQ(histogram.cold, 8u);
  // Distance 7 lands in bucket [4,8).
  EXPECT_EQ(histogram.buckets[2], 32u);
  // A 4-line LRU cache misses everything; an 8-line one catches it all.
  EXPECT_DOUBLE_EQ(histogram.HitFraction(4), 0.0);
  EXPECT_NEAR(histogram.HitFraction(8), 32.0 / 40.0, 1e-9);
}

TEST_F(TraceStatsTest, ReuseHistogramEmptyTrace) {
  ReuseHistogram histogram = ComputeReuseHistogram(Sync());
  EXPECT_EQ(histogram.cold, 0u);
  EXPECT_EQ(histogram.HitFraction(1024), 0.0);
}

TEST_F(TraceStatsTest, CacheSimTinyCacheThrashes) {
  Cpu& cpu = system_.cpu();
  // Two lines that conflict in a 1-line cache.
  for (int i = 0; i < 20; ++i) {
    cpu.Write(base_ + (i % 2 == 0 ? 0u : 16u * 256), 1);
    cpu.Compute(100);
  }
  LogReader reader = Sync();
  TraceCacheResult tiny = SimulateTraceCache(reader, 1);
  EXPECT_EQ(tiny.MissRate(), 1.0);
  TraceCacheResult big = SimulateTraceCache(reader, 1024);
  EXPECT_EQ(big.misses, 2u);
}

}  // namespace
}  // namespace lvm
