// Determinism tests for the parallel execution engine (src/par).
//
// Deterministic mode promises that the seed fully determines the run: the
// token-passing scheduler draws every decision from Rng(seed) and exactly
// one worker executes at a time through the unmodified machine, so the same
// seed must reproduce bit-identical log segments and metric snapshots on
// every run. Parallel mode gives up cycle-exact timing but not content:
// each shard log carries its worker's writes in program order, so the
// (addr, value, size) sequence per log must match deterministic mode's.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/logger/log_record.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/metrics.h"
#include "src/obs/waterfall.h"
#include "src/par/engine.h"

namespace lvm {
namespace {

constexpr int kNumWorkers = 3;
constexpr uint32_t kStepsPerWorker = 1200;
constexpr uint32_t kRegionWords = 256;  // One page per worker's region.

// Deterministic per-worker write stream, independent of the schedule.
uint32_t Mix(uint32_t worker, uint32_t step) {
  uint32_t z = worker * 0x9e3779b9u + step * 0x85ebca6bu + 1;
  z ^= z >> 16;
  z *= 0x7feb352du;
  z ^= z >> 15;
  return z;
}

struct Workload {
  LvmSystem system;
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  VirtAddr bases[kNumWorkers] = {};

  explicit Workload(int num_cpus) : system(MakeConfig(num_cpus)) {
    AddressSpace* as = system.CreateAddressSpace();
    for (int i = 0; i < kNumWorkers; ++i) {
      Region* region = system.CreateRegion(system.CreateSegment(kRegionWords * 4));
      bases[i] = as->BindRegion(region);
      LogSegment* log = system.CreateLogSegment(4);
      system.AttachLog(region, log);
      regions.push_back(region);
      logs.push_back(log);
    }
    for (int i = 0; i < num_cpus; ++i) {
      system.Activate(as, i);
    }
  }

  static LvmConfig MakeConfig(int num_cpus) {
    LvmConfig config;
    config.num_cpus = num_cpus;
    return config;
  }

  // Materializes every region's frames in a fixed order, so physical
  // addresses (which appear in the records) do not depend on the schedule's
  // first-touch order. Parallel mode requires this anyway: page faults are
  // forbidden while free-running.
  void Prefault() {
    for (int i = 0; i < kNumWorkers; ++i) {
      system.TouchRegion(&system.cpu(i), regions[i]);
    }
  }

  par::ParallelEngine::StepFn StepFor(int worker) {
    VirtAddr base = bases[worker];
    return [base, worker](Cpu& cpu, uint64_t step) {
      cpu.Write(base + 4 * (step % kRegionWords), Mix(static_cast<uint32_t>(worker),
                                                      static_cast<uint32_t>(step)));
      cpu.Compute(40);
      return step + 1 < kStepsPerWorker;
    };
  }
};

// Raw bytes of the log's appended records.
std::vector<uint8_t> LogBytes(LvmSystem& system, const LogSegment& log) {
  std::vector<uint8_t> bytes(log.append_offset);
  for (uint32_t offset = 0; offset < log.append_offset; offset += kPageSize) {
    uint32_t len = std::min<uint32_t>(kPageSize, log.append_offset - offset);
    system.memory().ReadBlock(log.FrameAt(PageNumber(offset)) + PageOffset(offset),
                              bytes.data() + offset, len);
  }
  return bytes;
}

struct RunResult {
  std::vector<std::vector<uint8_t>> log_bytes;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, obs::HistogramSnapshot> histograms;
};

RunResult RunDeterministic(uint64_t seed) {
  Workload workload(kNumWorkers);
  par::EngineConfig config;
  config.mode = par::Mode::kDeterministic;
  config.seed = seed;
  par::ParallelEngine engine(&workload.system, config);
  workload.Prefault();
  for (int i = 0; i < kNumWorkers; ++i) {
    engine.AddWorker(nullptr, workload.StepFor(i));
  }
  engine.Run();
  for (int i = 0; i < kNumWorkers; ++i) {
    workload.system.SyncLog(&workload.system.cpu(i), workload.logs[i]);
  }
  RunResult result;
  for (LogSegment* log : workload.logs) {
    result.log_bytes.push_back(LogBytes(workload.system, *log));
  }
  obs::Snapshot snapshot = workload.system.metrics().TakeSnapshot();
  result.counters = snapshot.counters();
  result.gauges = snapshot.gauges();
  result.histograms = snapshot.histograms();
  return result;
}

void ExpectSameMetrics(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  auto it = b.histograms.begin();
  for (const auto& [name, hist] : a.histograms) {
    EXPECT_EQ(name, it->first);
    EXPECT_EQ(hist.count, it->second.count) << name;
    EXPECT_EQ(hist.sum, it->second.sum) << name;
    EXPECT_EQ(hist.min, it->second.min) << name;
    EXPECT_EQ(hist.max, it->second.max) << name;
    EXPECT_EQ(hist.buckets, it->second.buckets) << name;
    ++it;
  }
}

TEST(ParDeterminismTest, SameSeedIsBitIdenticalAcrossTenRuns) {
  RunResult first = RunDeterministic(42);
  ASSERT_EQ(first.log_bytes.size(), static_cast<size_t>(kNumWorkers));
  for (int i = 0; i < kNumWorkers; ++i) {
    EXPECT_EQ(first.log_bytes[i].size(), kStepsPerWorker * kLogRecordSize) << "log " << i;
  }
  for (int run = 1; run < 10; ++run) {
    RunResult repeat = RunDeterministic(42);
    for (int i = 0; i < kNumWorkers; ++i) {
      EXPECT_EQ(first.log_bytes[i], repeat.log_bytes[i]) << "run " << run << " log " << i;
    }
    ExpectSameMetrics(first, repeat);
  }
}

TEST(ParDeterminismTest, LogPayloadIsScheduleIndependent) {
  // Different seeds produce different interleavings (and so different
  // timestamps), but every log belongs to exactly one worker whose program
  // is schedule independent: the (addr, value, size) sequences must match.
  RunResult a = RunDeterministic(7);
  RunResult b = RunDeterministic(1234567);
  for (int i = 0; i < kNumWorkers; ++i) {
    ASSERT_EQ(a.log_bytes[i].size(), b.log_bytes[i].size()) << "log " << i;
    size_t records = a.log_bytes[i].size() / kLogRecordSize;
    for (size_t r = 0; r < records; ++r) {
      LogRecord ra, rb;
      std::memcpy(&ra, a.log_bytes[i].data() + r * kLogRecordSize, kLogRecordSize);
      std::memcpy(&rb, b.log_bytes[i].data() + r * kLogRecordSize, kLogRecordSize);
      ASSERT_EQ(ra.addr, rb.addr) << "log " << i << " record " << r;
      ASSERT_EQ(ra.value, rb.value) << "log " << i << " record " << r;
      ASSERT_EQ(ra.size, rb.size) << "log " << i << " record " << r;
    }
  }
}

TEST(ParDeterminismTest, ParallelModeMatchesDeterministicPayload) {
  RunResult reference = RunDeterministic(42);

  Workload workload(kNumWorkers);
  par::EngineConfig config;
  config.mode = par::Mode::kParallel;
  par::ParallelEngine engine(&workload.system, config);
  engine.RegisterMetrics();
  workload.Prefault();
  for (int i = 0; i < kNumWorkers; ++i) {
    engine.AddWorker(workload.logs[i], workload.StepFor(i));
  }
  engine.Run();

  for (int i = 0; i < kNumWorkers; ++i) {
    LogReader reader(workload.system.memory(), *workload.logs[i]);
    ASSERT_EQ(reader.size(), kStepsPerWorker) << "log " << i;
    ASSERT_EQ(reference.log_bytes[i].size(), kStepsPerWorker * kLogRecordSize);
    for (size_t r = 0; r < reader.size(); ++r) {
      LogRecord expected;
      std::memcpy(&expected, reference.log_bytes[i].data() + r * kLogRecordSize,
                  kLogRecordSize);
      LogRecord actual = reader.At(r);
      // Timestamps differ (free-running clocks versus exact bus grants);
      // content and order must not.
      ASSERT_EQ(actual.addr, expected.addr) << "log " << i << " record " << r;
      ASSERT_EQ(actual.value, expected.value) << "log " << i << " record " << r;
      ASSERT_EQ(actual.size, expected.size) << "log " << i << " record " << r;
    }
    EXPECT_EQ(workload.logs[i]->records_lost, 0u);
  }
  EXPECT_EQ(workload.system.GetStats().logged_writes,
            static_cast<uint64_t>(kNumWorkers) * kStepsPerWorker);
}

// One deterministic run with the provenance waterfall enabled: returns, per
// log, the record indices the tracer flagged (kRecordFlagSampled in the
// appended bytes — the bit the replay path keys on).
std::vector<std::vector<size_t>> RunDeterministicSampled(uint64_t engine_seed,
                                                         uint64_t waterfall_seed) {
  Workload workload(kNumWorkers);
  obs::WaterfallConfig wconfig;
  wconfig.sample_shift = 4;
  wconfig.seed = waterfall_seed;
  workload.system.EnableWaterfall(wconfig);
  par::EngineConfig config;
  config.mode = par::Mode::kDeterministic;
  config.seed = engine_seed;
  par::ParallelEngine engine(&workload.system, config);
  workload.Prefault();
  for (int i = 0; i < kNumWorkers; ++i) {
    engine.AddWorker(nullptr, workload.StepFor(i));
  }
  engine.Run();
  std::vector<std::vector<size_t>> sampled(kNumWorkers);
  for (int i = 0; i < kNumWorkers; ++i) {
    workload.system.SyncLog(&workload.system.cpu(i), workload.logs[i]);
    LogReader reader(workload.system.memory(), *workload.logs[i]);
    for (size_t r = 0; r < reader.size(); ++r) {
      if ((reader.At(r).flags & kRecordFlagSampled) != 0) {
        sampled[i].push_back(r);
      }
    }
  }
  return sampled;
}

TEST(ParDeterminismTest, WaterfallSamplesIdenticalRecordSetPerSeed) {
  // Determinism promise 3 of src/obs/waterfall.h: under the seeded
  // token-passing scheduler, the same (engine seed, tracer seed) pair must
  // flag the identical record set on every run — the sampled bit is part
  // of the bytes the bit-identical guarantee covers.
  std::vector<std::vector<size_t>> first = RunDeterministicSampled(42, 7);
  std::vector<std::vector<size_t>> second = RunDeterministicSampled(42, 7);
  for (int i = 0; i < kNumWorkers; ++i) {
    EXPECT_FALSE(first[i].empty()) << "log " << i;
    EXPECT_EQ(first[i], second[i]) << "log " << i;
  }
  // A different tracer seed shifts each lane's sampling phase without
  // touching payload determinism: same cardinality stride, different set
  // on at least one lane.
  std::vector<std::vector<size_t>> reseeded = RunDeterministicSampled(42, 8);
  bool any_difference = false;
  for (int i = 0; i < kNumWorkers; ++i) {
    any_difference = any_difference || reseeded[i] != first[i];
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace lvm
