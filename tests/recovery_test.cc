// Crash-recovery tests: the committed state of a recoverable store must be
// reconstructible from the RAM disk's home image plus its forced redo log,
// for both implementations — including after truncations, aborts, and a
// crash mid-transaction.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/rvm/ram_disk.h"
#include "src/rvm/rlvm.h"
#include "src/rvm/rvm.h"
#include "src/tpc/tpca.h"

namespace lvm {
namespace {

constexpr uint32_t kStoreBytes = 64 * 1024;

template <typename StoreT>
class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    as_ = system_.CreateAddressSpace();
    store_ = std::make_unique<StoreT>(&system_, as_, &disk_, kStoreBytes);
    system_.Activate(as_);
    committed_shadow_.assign(kStoreBytes, 0);
    speculative_shadow_.assign(kStoreBytes, 0);
  }

  void WriteWord(uint32_t offset, uint32_t value) {
    store_->Write(&system_.cpu(), store_->data_base() + offset, value);
    std::memcpy(&speculative_shadow_[offset], &value, 4);
  }
  void Begin() {
    store_->Begin(&system_.cpu());
    speculative_shadow_ = committed_shadow_;
  }
  void BeginAndRange(uint32_t offset, uint32_t len) {
    Begin();
    store_->SetRange(&system_.cpu(), store_->data_base() + offset, len);
  }
  void Commit() {
    store_->Commit(&system_.cpu());
    committed_shadow_ = speculative_shadow_;
  }
  void Abort() { store_->Abort(&system_.cpu()); }

  // "Crash" the machine and recover purely from the device.
  void ExpectRecoveredStateMatchesCommitted() {
    disk_.Crash();
    std::vector<uint8_t> recovered = disk_.RecoverImage(kStoreBytes);
    // data_size may exceed kStoreBytes due to page rounding; compare the
    // requested store span.
    EXPECT_EQ(std::memcmp(recovered.data(), committed_shadow_.data(), kStoreBytes), 0);
  }

  LvmSystem system_;
  RamDisk disk_;
  AddressSpace* as_ = nullptr;
  std::unique_ptr<RecoverableStore> store_;
  std::vector<uint8_t> committed_shadow_;
  std::vector<uint8_t> speculative_shadow_;
};

using StoreTypes = ::testing::Types<Rvm, Rlvm>;
template <typename T>
struct StoreName;
template <>
struct StoreName<Rvm> {
  static constexpr const char* kName = "Rvm";
};
template <>
struct StoreName<Rlvm> {
  static constexpr const char* kName = "Rlvm";
};
class StoreNameGenerator {
 public:
  template <typename T>
  static std::string GetName(int) {
    return StoreName<T>::kName;
  }
};
TYPED_TEST_SUITE(RecoveryTest, StoreTypes, StoreNameGenerator);

TYPED_TEST(RecoveryTest, CommittedTransactionsSurviveCrash) {
  this->BeginAndRange(0, 8);
  this->WriteWord(0, 0x1111);
  this->WriteWord(4, 0x2222);
  this->Commit();
  this->BeginAndRange(100, 4);
  this->WriteWord(100, 0x3333);
  this->Commit();
  this->ExpectRecoveredStateMatchesCommitted();
}

TYPED_TEST(RecoveryTest, UncommittedTransactionLostOnCrash) {
  this->BeginAndRange(0, 4);
  this->WriteWord(0, 0xAAAA);
  this->Commit();
  // A transaction in flight at the crash: its writes must not recover.
  this->BeginAndRange(0, 4);
  this->WriteWord(0, 0xBBBB);
  this->ExpectRecoveredStateMatchesCommitted();  // Still 0xAAAA.
}

TYPED_TEST(RecoveryTest, AbortedTransactionNeverReachesDevice) {
  this->BeginAndRange(0, 4);
  this->WriteWord(0, 1);
  this->Commit();
  this->BeginAndRange(0, 4);
  this->WriteWord(0, 999);
  this->Abort();
  this->ExpectRecoveredStateMatchesCommitted();
  EXPECT_EQ(this->disk_.forces(), 1u);
}

TYPED_TEST(RecoveryTest, RecoveryAcrossTruncation) {
  // Truncation folds the log into the home image; recovery must still see
  // everything.
  for (uint32_t i = 0; i < 10; ++i) {
    this->BeginAndRange(4 * i, 4);
    this->WriteWord(4 * i, 1000 + i);
    this->Commit();
  }
  this->disk_.TruncateToImage(&this->system_.cpu());
  for (uint32_t i = 10; i < 15; ++i) {
    this->BeginAndRange(4 * i, 4);
    this->WriteWord(4 * i, 1000 + i);
    this->Commit();
  }
  this->ExpectRecoveredStateMatchesCommitted();
}

TYPED_TEST(RecoveryTest, OverwritesRecoverToLatestCommit) {
  for (uint32_t round = 0; round < 8; ++round) {
    this->BeginAndRange(40, 4);
    this->WriteWord(40, round * 7 + 1);
    this->Commit();
  }
  this->ExpectRecoveredStateMatchesCommitted();
}

TYPED_TEST(RecoveryTest, RandomizedWorkloadRecovers) {
  Rng rng(991);
  for (int tx = 0; tx < 60; ++tx) {
    this->Begin();
    for (int w = 0; w < 6; ++w) {
      uint32_t offset = static_cast<uint32_t>(rng.Uniform(kStoreBytes / 4)) * 4;
      this->store_->SetRange(&this->system_.cpu(), this->store_->data_base() + offset, 4);
      this->WriteWord(offset, static_cast<uint32_t>(rng.Next64()));
    }
    if (rng.Chance(0.25)) {
      this->Abort();
    } else {
      this->Commit();
    }
    if (tx % 20 == 19) {
      this->disk_.TruncateToImage(&this->system_.cpu());
    }
  }
  this->ExpectRecoveredStateMatchesCommitted();
}

TEST(TpcARecoveryTest, BankSurvivesCrash) {
  // End to end: run TPC-A on RLVM, crash, recover, and audit the books.
  LvmSystem system;
  RamDisk disk;
  AddressSpace* as = system.CreateAddressSpace();
  Rlvm store(&system, as, &disk, 1u << 20);
  system.Activate(as);
  TpcAConfig config;
  config.accounts = 500;
  config.history_slots = 256;
  TpcA tpc(&store, config);
  tpc.Setup(&system.cpu());
  for (int i = 0; i < 150; ++i) {
    tpc.RunTransaction(&system.cpu());
  }
  ASSERT_TRUE(tpc.CheckConsistency(&system.cpu()));

  disk.Crash();
  std::vector<uint8_t> recovered = disk.RecoverImage(store.data_size());
  // Audit the recovered image directly: branch balances must sum to the
  // committed total.
  auto word_at = [&recovered](uint32_t offset) {
    int32_t value = 0;
    std::memcpy(&value, &recovered[offset], 4);
    return value;
  };
  int64_t branches = 0;
  for (uint32_t b = 0; b < config.branches; ++b) {
    branches += word_at(b * TpcAConfig::kRowBytes);
  }
  int64_t accounts = 0;
  for (uint32_t a = 0; a < config.accounts; ++a) {
    accounts += word_at((config.branches + config.tellers + a) * TpcAConfig::kRowBytes);
  }
  EXPECT_EQ(branches, tpc.expected_total());
  EXPECT_EQ(accounts, tpc.expected_total());
}

// Device-level semantics: a forced-but-uncommitted tail cannot happen
// through the store API, but the device still defines it.
TEST(RamDiskTest, PendingRecordsDieWithoutForce) {
  LvmSystem system;
  RamDisk disk;
  Cpu& cpu = system.cpu();
  disk.BeginAppend(&cpu);
  disk.AppendRecord(&cpu, DeviceRecord{.offset = 0, .value = 7, .size = 4});
  disk.Crash();
  std::vector<uint8_t> recovered = disk.RecoverImage(64);
  EXPECT_EQ(recovered[0], 0);
}

TEST(RamDiskTest, ForcedRecordsSurvive) {
  LvmSystem system;
  RamDisk disk;
  Cpu& cpu = system.cpu();
  disk.BeginAppend(&cpu);
  disk.AppendRecord(&cpu, DeviceRecord{.offset = 4, .value = 0xBEEF, .size = 4});
  disk.CommitAndForce(&cpu);
  disk.Crash();
  std::vector<uint8_t> recovered = disk.RecoverImage(64);
  uint32_t value = 0;
  std::memcpy(&value, &recovered[4], 4);
  EXPECT_EQ(value, 0xBEEFu);
}

TEST(RamDiskTest, DiscardPendingIsAbort) {
  LvmSystem system;
  RamDisk disk;
  Cpu& cpu = system.cpu();
  disk.BeginAppend(&cpu);
  disk.AppendRecord(&cpu, DeviceRecord{.offset = 0, .value = 1, .size = 4});
  disk.DiscardPending();
  disk.CommitAndForce(&cpu);  // Commits nothing.
  EXPECT_EQ(disk.durable_records(), 0u);
}

}  // namespace
}  // namespace lvm
