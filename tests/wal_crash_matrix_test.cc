// The durable-WAL crash-injection recovery matrix (DESIGN.md §15).
//
// Every cell forks a child that runs a deterministic transactional workload
// against a DurableTransactionalRegion, arms the WAL's crash hook, and dies
// with _exit() at one enumerated persist point of one target commit —
// optionally corrupting a byte of the commit's frame first (the torn
// variant, simulating a torn sector that reached the device). The parent
// then recovers the on-disk state like a fresh process would and asserts:
//
//   - the recovered region is byte-exact against an in-memory oracle of
//     the expected commit prefix (the target commit survives if and only
//     if its END frame hit the file intact);
//   - the replayed WAL records cross-check against the recovered bytes
//     (LogReplayVerifier::CrossCheckImage finds no mismatch);
//   - the dying child's lvm.walbox.v1 black-box dump parses and names the
//     kill site;
//   - and — the teeth proof — recovering the payload-corrupted cell with
//     checksum validation disabled produces *wrong* bytes, so the matrix
//     would catch a recovery path that skipped validation.
//
// The crash model is process death: MAP_SHARED stores that executed are in
// the page cache when the child dies, so each hook point pins an exact
// file image regardless of msync timing.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/log_replay_verifier.h"
#include "src/hostlvm/durable_region.h"
#include "src/hostlvm/wal_arena.h"
#include "src/hostlvm/wal_layout.h"
#include "src/logger/log_record.h"
#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {
namespace {

constexpr size_t kRegionPages = 1;
constexpr size_t kRegionBytes = kRegionPages * 4096;
constexpr int kTotalCommits = 6;
constexpr int kWritesPerCommit = 3;
// A commit too large for one 4 KB log block, to crash mid-chain.
constexpr int kBigWritesPerCommit = 300;

// One matrix cell: die at `point` of commit `target`; `torn` additionally
// flips a byte of the commit's frame bytes before dying; `big` makes every
// commit span multiple chained log blocks.
struct Cell {
  WalPersistPoint point;
  bool torn = false;
  uint64_t target = 4;
  bool big = false;
};

std::string CellName(const Cell& cell) {
  std::ostringstream name;
  name << ToString(cell.point) << (cell.torn ? "_torn" : "_clean") << "_k" << cell.target
       << (cell.big ? "_big" : "");
  return name.str();
}

// Commits the target survives at: only a clean END in the file makes it
// recoverable; a torn (checksum-failing) commit is discarded even when the
// superblock cursor already advanced past it.
uint64_t ExpectedCommits(const Cell& cell) {
  const bool end_in_file = cell.point == WalPersistPoint::kAfterEndWrite ||
                           cell.point == WalPersistPoint::kAfterCommitAdvance;
  return end_in_file && !cell.torn ? cell.target : cell.target - 1;
}

// --- the deterministic workload and its oracle ---

int WritesPerCommit(const Cell& cell) {
  return cell.big ? kBigWritesPerCommit : kWritesPerCommit;
}

// The j-th write of commit i: a word offset and value derived from (i, j)
// alone, so parent and child agree without communicating.
void CommitWrite(int commit, int j, uint64_t* offset, uint32_t* value) {
  *offset = (static_cast<uint64_t>(commit) * 52 + static_cast<uint64_t>(j) * 28 + 4) %
            kRegionBytes & ~uint64_t{3};
  *value = static_cast<uint32_t>(commit) * 0x01000000u + static_cast<uint32_t>(j) + 1;
}

void ApplyCommitToOracle(std::vector<uint8_t>* image, int commit, int writes) {
  for (int j = 0; j < writes; ++j) {
    uint64_t offset = 0;
    uint32_t value = 0;
    CommitWrite(commit, j, &offset, &value);
    std::memcpy(image->data() + offset, &value, sizeof(value));
  }
}

std::vector<uint8_t> OracleImage(uint64_t commits, int writes) {
  std::vector<uint8_t> image(kRegionBytes, 0);
  for (uint64_t i = 1; i <= commits; ++i) {
    ApplyCommitToOracle(&image, static_cast<int>(i), writes);
  }
  return image;
}

void RunCommit(DurableTransactionalRegion* region, int commit, int writes) {
  region->Begin();
  for (int j = 0; j < writes; ++j) {
    uint64_t offset = 0;
    uint32_t value = 0;
    CommitWrite(commit, j, &offset, &value);
    std::memcpy(region->data() + offset, &value, sizeof(value));
  }
  region->Commit(/*timestamp_ns=*/static_cast<uint64_t>(commit) * 1000);
}

// --- the dying child ---

// Byte the torn variant flips, relative to the commit's first payload byte:
// inside the first record's value field (past the BEGIN frame's offset
// word), so a checksum-skipping recovery applies a visibly wrong datum.
constexpr uint64_t kCorruptDelta = sizeof(WalBeginFrame) + 8;

// Runs the workload until the cell's hook fires; never returns normally.
// Exit codes: 42 = killed at the intended persist point, anything else is
// a harness failure the parent reports.
[[noreturn]] void ChildBody(const std::string& dir, const Cell& cell,
                            const std::string& dump_path) {
  DurableRegionOptions options;
  options.pages = kRegionPages;
  // Window 1: every Commit() flushes alone, so persist points map to one
  // commit each and the survivor prefix is exact.
  options.wal.group_commit_window = 1;
  std::string error;
  auto region = DurableTransactionalRegion::Open(dir, options, &error);
  if (region == nullptr) {
    std::fprintf(stderr, "child: %s\n", error.c_str());
    _exit(2);
  }
  WalArena* wal = region->wal();
  // Captured at the target's kBeforeBlockWrite (which precedes every other
  // point of the same flush): where the commit's frame bytes begin.
  uint64_t start_block = 0;
  uint64_t start_offset = 0;
  wal->SetCrashHook([&](WalPersistPoint point, uint64_t seq) {
    if (seq != cell.target) {
      return;
    }
    if (point == WalPersistPoint::kBeforeBlockWrite) {
      start_block = wal->superblock().commit_block;
      start_offset = wal->superblock().commit_offset;
    }
    if (point != cell.point) {
      return;
    }
    if (cell.torn) {
      // lvm-lint: allow(wal-raw-store) — fault injection is the exemption.
      uint8_t* payload = wal->raw_block_bytes(start_block) + sizeof(WalBlockHeader);
      const uint64_t delta =
          point == WalPersistPoint::kBeforeBlockWrite ? 0 : kCorruptDelta;
      payload[start_offset + delta] ^= 0xff;
    }
    wal->WriteWalBox(dump_path, "crash_injection", ToString(point));
    _exit(42);  // The crash: no atexit, no flush, no destructor runs.
  });
  for (int i = 1; i <= kTotalCommits; ++i) {
    RunCommit(region.get(), i, WritesPerCommit(cell));
  }
  _exit(3);  // Hook never fired: the cell is miswired.
}

// --- parent-side recovery and verification ---

// Fresh per-cell region directory. Dumps land in LVM_WAL_ARTIFACT_DIR when
// set (scripts/check.sh --wal-only and the CI walcheck job collect them as
// artifacts), else beside the region in TempDir.
std::string CellDir(const Cell& cell) {
  std::string dir = testing::TempDir() + "wal_matrix_" + CellName(cell);
  std::string command = "rm -rf " + dir;
  EXPECT_EQ(std::system(command.c_str()), 0);
  return dir;
}

std::string DumpPath(const Cell& cell) {
  const char* artifact_dir = std::getenv("LVM_WAL_ARTIFACT_DIR");
  const std::string base = artifact_dir != nullptr ? std::string(artifact_dir) + "/"
                                                   : testing::TempDir();
  return base + CellName(cell) + ".walbox.json";
}

struct RecoverOutcome {
  std::vector<WalRecoveredCommit> commits;
  WalRecoveryStats stats;
};

RecoverOutcome RecoverArena(const std::string& wal_path, bool verify_checksums) {
  RecoverOutcome outcome;
  std::string error;
  auto arena = WalArena::Open(wal_path, &error);
  EXPECT_NE(arena, nullptr) << error;
  if (arena == nullptr) {
    return outcome;
  }
  WalRecoverOptions options;
  options.verify_checksums = verify_checksums;
  outcome.stats = arena->Replay(
      [&outcome](const WalRecoveredCommit& commit) { outcome.commits.push_back(commit); },
      options);
  return outcome;
}

std::vector<LogRecord> ToLogRecords(const std::vector<WalRecoveredCommit>& commits) {
  std::vector<LogRecord> records;
  for (const WalRecoveredCommit& commit : commits) {
    for (const WalRecord& record : commit.records) {
      LogRecord out;
      out.addr = static_cast<uint32_t>(record.offset);
      out.value = static_cast<uint32_t>(record.value);
      out.size = static_cast<uint16_t>(record.size);
      out.timestamp = static_cast<uint32_t>(commit.timestamp_ns);
      records.push_back(out);
    }
  }
  return records;
}

// Forks the cell's child and waits for it to die at the intended point.
void RunChild(const std::string& dir, const Cell& cell, const std::string& dump_path) {
  std::remove(dump_path.c_str());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ChildBody(dir, cell, dump_path);  // Never returns.
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died abnormally (status " << status << ")";
  ASSERT_EQ(WEXITSTATUS(status), 42) << "child did not crash at the intended persist point";
}

void ExpectWalBoxValid(const std::string& dump_path, const Cell& cell) {
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "missing walbox dump " << dump_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_TRUE(obs::ValidateJson(text)) << text;
  obs::JsonValue dump;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(text, &dump, &error)) << error;
  EXPECT_EQ(dump.GetString("schema"), obs::kWalBoxSchema);
  EXPECT_EQ(dump.GetString("cause"), "crash_injection");
  EXPECT_EQ(dump.GetString("detail"), ToString(cell.point));
  const obs::JsonValue* superblock = dump.Find("superblock");
  ASSERT_NE(superblock, nullptr);
  EXPECT_GT(superblock->GetUint64("block_count"), 0u);
  const obs::JsonValue* counters = dump.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->GetUint64("commits"), cell.target);
}

// One full cell: crash, recover, verify byte-exactness + cross-check + dump.
void ExpectCellRecovers(const Cell& cell) {
  SCOPED_TRACE(CellName(cell));
  const std::string dir = CellDir(cell);
  const std::string dump_path = DumpPath(cell);
  RunChild(dir, cell, dump_path);

  const uint64_t expected = ExpectedCommits(cell);

  // Raw arena recovery: the survivor prefix is exactly commits 1..expected.
  RecoverOutcome outcome = RecoverArena(DurableTransactionalRegion::WalPath(dir), true);
  ASSERT_EQ(outcome.commits.size(), expected);
  for (uint64_t i = 0; i < expected; ++i) {
    EXPECT_EQ(outcome.commits[i].seq, i + 1);
    EXPECT_EQ(outcome.commits[i].timestamp_ns, (i + 1) * 1000);
    EXPECT_EQ(outcome.commits[i].records.size(),
              static_cast<size_t>(WritesPerCommit(cell)));
  }
  EXPECT_EQ(outcome.stats.commits_applied, expected);
  EXPECT_EQ(outcome.stats.last_seq, expected);

  // Whether the walk ended on a torn frame is also fully determined.
  const bool expect_torn = cell.torn ||
                           cell.point == WalPersistPoint::kMidBlockWrite ||
                           cell.point == WalPersistPoint::kAfterPayloadWrite;
  EXPECT_EQ(outcome.stats.tail_torn, expect_torn);
  if (cell.torn && (cell.point == WalPersistPoint::kAfterEndWrite ||
                    cell.point == WalPersistPoint::kAfterCommitAdvance)) {
    // Corrupted payload under an intact END: only the checksum catches it.
    EXPECT_EQ(outcome.stats.checksum_failures, 1u);
  }

  // Region recovery: byte-exact against the oracle prefix image.
  DurableRegionOptions options;
  options.pages = kRegionPages;
  std::string error;
  auto region = DurableTransactionalRegion::Open(dir, options, &error);
  ASSERT_NE(region, nullptr) << error;
  const std::vector<uint8_t> oracle = OracleImage(expected, WritesPerCommit(cell));
  ASSERT_EQ(region->size_bytes(), oracle.size());
  EXPECT_EQ(std::memcmp(region->data(), oracle.data(), oracle.size()), 0)
      << "recovered region diverges from the oracle image";
  EXPECT_EQ(region->recovery_stats().commits_applied, expected);

  // Post-mortem cross-check: the recovered log replays to the recovered
  // memory (the lvm-inspect --replay-check machinery, aimed at the WAL).
  const std::vector<ReplayMismatch> mismatches = LogReplayVerifier::CrossCheckImage(
      ToLogRecords(outcome.commits), /*base=*/0, region->data(), region->size_bytes());
  EXPECT_TRUE(mismatches.empty()) << LogReplayVerifier::Describe(mismatches);

  // The dying process left a parseable black box naming the kill site.
  ExpectWalBoxValid(dump_path, cell);
}

// --- the matrix ---

// Every enumerated persist point, clean and torn, at a mid-stream commit.
TEST(WalCrashMatrixTest, EveryPersistPointRecoversByteExact) {
  const WalPersistPoint points[] = {
      WalPersistPoint::kBeforeBlockWrite,  WalPersistPoint::kMidBlockWrite,
      WalPersistPoint::kAfterPayloadWrite, WalPersistPoint::kAfterEndWrite,
      WalPersistPoint::kAfterCommitAdvance,
  };
  for (WalPersistPoint point : points) {
    for (bool torn : {false, true}) {
      ExpectCellRecovers(Cell{point, torn, /*target=*/4});
    }
  }
}

// The very first commit: recovery to the empty (all-zeros) prefix.
TEST(WalCrashMatrixTest, CrashOnFirstCommitRecoversEmptyRegion) {
  for (WalPersistPoint point :
       {WalPersistPoint::kBeforeBlockWrite, WalPersistPoint::kMidBlockWrite,
        WalPersistPoint::kAfterPayloadWrite}) {
    for (bool torn : {false, true}) {
      ExpectCellRecovers(Cell{point, torn, /*target=*/1});
    }
  }
}

// Commits large enough to chain across log blocks: a torn write in the
// middle of the chain and a clean END at its end both recover exactly.
TEST(WalCrashMatrixTest, BlockChainCrossingCommitsRecover) {
  for (WalPersistPoint point :
       {WalPersistPoint::kMidBlockWrite, WalPersistPoint::kAfterPayloadWrite,
        WalPersistPoint::kAfterEndWrite}) {
    ExpectCellRecovers(Cell{point, /*torn=*/false, /*target=*/3, /*big=*/true});
  }
}

// The teeth proof: the payload-corrupted, END-intact cell recovers *wrong*
// bytes when checksum validation is skipped. If recovery stopped
// validating checksums, EveryPersistPointRecoversByteExact's torn
// kAfterEndWrite cell would fail the byte-exactness assertion exactly the
// way this test demonstrates.
TEST(WalCrashMatrixTest, ChecksumValidationHasTeeth) {
  const Cell cell{WalPersistPoint::kAfterEndWrite, /*torn=*/true, /*target=*/4};
  const std::string dir = CellDir(cell);
  const std::string dump_path = DumpPath(cell);
  RunChild(dir, cell, dump_path);

  // Unchecked recovery applies the corrupted commit...
  RecoverOutcome unchecked = RecoverArena(DurableTransactionalRegion::WalPath(dir), false);
  EXPECT_GE(unchecked.stats.checksum_failures, 1u);
  ASSERT_EQ(unchecked.commits.size(), cell.target);

  std::vector<uint8_t> image(kRegionBytes, 0);
  for (const WalRecoveredCommit& commit : unchecked.commits) {
    for (const WalRecord& record : commit.records) {
      ASSERT_LE(record.offset + record.size, image.size());
      std::memcpy(image.data() + record.offset, &record.value, record.size);
    }
  }
  const std::vector<uint8_t> with_target = OracleImage(cell.target, kWritesPerCommit);
  const std::vector<uint8_t> without_target = OracleImage(cell.target - 1, kWritesPerCommit);
  // ...and the result matches *neither* consistent state: garbage.
  EXPECT_NE(std::memcmp(image.data(), with_target.data(), image.size()), 0)
      << "corrupting the payload changed nothing — the teeth cell is miswired";
  EXPECT_NE(std::memcmp(image.data(), without_target.data(), image.size()), 0);

  // Checked recovery of the same arena discards the commit and lands on
  // the consistent prefix.
  DurableRegionOptions options;
  options.pages = kRegionPages;
  auto region = DurableTransactionalRegion::Open(dir, options);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(std::memcmp(region->data(), without_target.data(), without_target.size()), 0);
}

// A crash while the *image* checkpoint is half-written is repaired by
// replay: the log still describes every byte by which memory had diverged.
TEST(WalCrashMatrixTest, TornCheckpointImageIsRepairedByReplay) {
  const std::string dir = testing::TempDir() + "wal_matrix_torn_image";
  const std::string command = "rm -rf " + dir;
  ASSERT_EQ(std::system(command.c_str()), 0);

  DurableRegionOptions options;
  options.pages = kRegionPages;
  options.wal.group_commit_window = 1;
  {
    auto region = DurableTransactionalRegion::Open(dir, options);
    ASSERT_NE(region, nullptr);
    for (int i = 1; i <= kTotalCommits; ++i) {
      RunCommit(region.get(), i, kWritesPerCommit);
    }
  }
  const std::vector<uint8_t> oracle = OracleImage(kTotalCommits, kWritesPerCommit);
  // Simulate the torn checkpoint: Checkpoint() died halfway through the
  // image memcpy, before the WAL truncation ran. The image is now a mix of
  // new bytes (the half that was copied) and old bytes (still the zeros it
  // was born with); the log still describes every logged write.
  {
    std::string error;
    auto image = HostMappedFile::Open(DurableTransactionalRegion::ImagePath(dir), &error);
    ASSERT_NE(image, nullptr) << error;
    std::memcpy(image->data(), oracle.data(), image->size() / 2);
  }
  auto region = DurableTransactionalRegion::Open(dir, options);
  ASSERT_NE(region, nullptr);
  // Replay over the torn mix lands on the exact committed state: every
  // byte by which memory had diverged from the old image is in the log,
  // with an absolute value.
  ASSERT_EQ(region->size_bytes(), oracle.size());
  EXPECT_EQ(std::memcmp(region->data(), oracle.data(), oracle.size()), 0);
  RecoverOutcome outcome = RecoverArena(DurableTransactionalRegion::WalPath(dir), true);
  EXPECT_EQ(outcome.stats.commits_applied, static_cast<uint64_t>(kTotalCommits));
  const std::vector<ReplayMismatch> mismatches = LogReplayVerifier::CrossCheckImage(
      ToLogRecords(outcome.commits), /*base=*/0, region->data(), region->size_bytes());
  EXPECT_TRUE(mismatches.empty()) << LogReplayVerifier::Describe(mismatches);
}

}  // namespace
}  // namespace lvm
