// Tests of the system-statistics snapshots.
#include <gtest/gtest.h>

#include "src/lvm/lvm_system.h"
#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

TEST(SystemStatsTest, CountsTrackActivity) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);

  LvmSystem::Stats before = system.GetStats();
  EXPECT_EQ(before.records_logged, 0u);
  EXPECT_EQ(before.writes, 0u);

  for (uint32_t i = 0; i < 50; ++i) {
    cpu.Write(base + 4 * i, i);
    cpu.Compute(200);
  }
  system.SyncLog(&cpu, log);

  LvmSystem::Stats after = system.GetStats();
  EXPECT_EQ(after.records_logged, 50u);
  EXPECT_EQ(after.writes, 50u);
  EXPECT_EQ(after.logged_writes, 50u);
  EXPECT_GE(after.page_faults, 1u);
  EXPECT_GT(after.bus_busy_cycles, 0u);
  EXPECT_EQ(after.records_dropped, 0u);
  EXPECT_EQ(after.max_cpu_cycles, cpu.now());
}

TEST(SystemStatsTest, StatsMatchRegistrySnapshot) {
  // GetStats() is a thin view over the metrics registry: every field must
  // agree with the raw component counters it replaced.
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(4 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  for (uint32_t i = 0; i < 200; ++i) {
    cpu.Write(base + 4 * (i % 512), i);
    cpu.Compute(150);
  }
  system.SyncLog(&cpu, log);

  LvmSystem::Stats stats = system.GetStats();
  const HardwareLogger* logger = system.bus_logger();
  ASSERT_NE(logger, nullptr);
  EXPECT_EQ(stats.records_logged, logger->records_logged());
  EXPECT_EQ(stats.records_dropped, logger->records_dropped());
  EXPECT_EQ(stats.mapping_faults, logger->mapping_faults());
  EXPECT_EQ(stats.tail_faults, logger->tail_faults());
  EXPECT_EQ(stats.writes, cpu.writes());
  EXPECT_EQ(stats.logged_writes, cpu.logged_writes());
  EXPECT_EQ(stats.page_faults, cpu.page_faults());
  EXPECT_EQ(stats.bus_busy_cycles, system.machine().bus().busy_cycles());
  EXPECT_EQ(stats.overload_suspensions, system.overload_suspensions());
  EXPECT_EQ(stats.max_cpu_cycles, cpu.now());

  obs::Snapshot snapshot = system.metrics().TakeSnapshot();
  EXPECT_EQ(snapshot.counter("logger.records_logged"), stats.records_logged);
  EXPECT_EQ(snapshot.counter("cpu.writes"), stats.writes);
}

TEST(SystemStatsTest, DeltaReportsPhaseActivity) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);

  for (uint32_t i = 0; i < 30; ++i) {
    cpu.Write(base + 4 * i, i);
    cpu.Compute(200);
  }
  system.SyncLog(&cpu, log);
  LvmSystem::Stats phase1 = system.GetStats();

  for (uint32_t i = 0; i < 20; ++i) {
    cpu.Write(base + 4 * i, i);
    cpu.Compute(200);
  }
  system.SyncLog(&cpu, log);
  LvmSystem::Stats phase2 = system.GetStats();

  LvmSystem::Stats delta = phase2.Delta(phase1);
  EXPECT_EQ(delta.writes, 20u);
  EXPECT_EQ(delta.records_logged, 20u);
  EXPECT_EQ(delta.max_cpu_cycles, phase2.max_cpu_cycles - phase1.max_cpu_cycles);
}

TEST(SystemStatsTest, OnChipVariantReports) {
  LvmConfig config;
  config.logger_kind = LoggerKind::kOnChip;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  cpu.Write(base, 1);
  LvmSystem::Stats stats = system.GetStats();
  EXPECT_EQ(stats.records_logged, 1u);
  EXPECT_EQ(stats.mapping_faults, 0u);  // No page mapping table on chip.
}

TEST(WarpStatsTest, EfficiencyReflectsRollbacks) {
  // A single-scheduler run wastes nothing.
  {
    LvmSystem system;
    SyntheticModel model(SyntheticModel::Params{});
    TimeWarpConfig config;
    config.num_schedulers = 1;
    config.objects_per_scheduler = 4;
    TimeWarpSimulation sim(&system, &model, config);
    Event event;
    event.time = 1;
    event.target_object = 0;
    event.payload = 42;
    sim.Bootstrap(event);
    sim.Run(400);
    EXPECT_DOUBLE_EQ(sim.Efficiency(), 1.0);
    EXPECT_EQ(sim.total_anti_messages(), 0u);
  }
  // A remote-heavy multi-scheduler run wastes some speculation.
  {
    LvmSystem system;
    SyntheticModel::Params params;
    params.remote_probability = 0.6;
    SyntheticModel model(params);
    TimeWarpConfig config;
    config.num_schedulers = 4;
    config.objects_per_scheduler = 2;
    TimeWarpSimulation sim(&system, &model, config);
    Rng rng(12);
    for (int i = 0; i < 8; ++i) {
      Event event;
      event.time = 1 + rng.Uniform(4);
      event.target_object = static_cast<uint32_t>(rng.Uniform(8));
      event.payload = rng.Next64();
      sim.Bootstrap(event);
    }
    sim.Run(1500);
    EXPECT_GT(sim.total_events_rolled_back(), 0u);
    EXPECT_LT(sim.Efficiency(), 1.0);
    EXPECT_GT(sim.Efficiency(), 0.2);
  }
}

}  // namespace
}  // namespace lvm
