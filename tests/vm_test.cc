// Unit tests for segments, regions, address spaces and the frame allocator.
#include <gtest/gtest.h>

#include "src/sim/phys_mem.h"
#include "src/vm/address_space.h"
#include "src/vm/frame_allocator.h"
#include "src/vm/region.h"
#include "src/vm/segment.h"

namespace lvm {
namespace {

class VmTest : public ::testing::Test {
 protected:
  VmTest() : memory_(16u << 20), allocator_(&memory_, 2 * kPageSize) {}

  PhysicalMemory memory_;
  FrameAllocator allocator_;
};

TEST_F(VmTest, FrameAllocatorZeroFillsAndRecycles) {
  PhysAddr a = allocator_.Allocate();
  EXPECT_EQ(PageOffset(a), 0u);
  memory_.Write(a, 0xff, 1);
  allocator_.Free(a);
  PhysAddr b = allocator_.Allocate();
  EXPECT_EQ(b, a);
  EXPECT_EQ(memory_.Read(b, 1), 0u);  // Recycled frames are re-zeroed.
}

TEST_F(VmTest, FrameAllocatorDistinctFrames) {
  PhysAddr a = allocator_.Allocate();
  PhysAddr b = allocator_.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(b - a, kPageSize);
}

TEST_F(VmTest, SegmentSizeRoundsUpToPages) {
  StdSegment segment(&allocator_, 5000);
  EXPECT_EQ(segment.size(), 2 * kPageSize);
  EXPECT_EQ(segment.page_count(), 2u);
}

TEST_F(VmTest, SegmentFramesMaterializeOnDemand) {
  StdSegment segment(&allocator_, 4 * kPageSize);
  EXPECT_FALSE(segment.HasFrame(2));
  PhysAddr frame = segment.EnsureFrame(2);
  EXPECT_TRUE(segment.HasFrame(2));
  EXPECT_EQ(segment.FrameAt(2), frame);
  EXPECT_EQ(segment.EnsureFrame(2), frame);  // Idempotent.
  EXPECT_EQ(segment.PageIndexOfFrame(frame), 2);
  EXPECT_EQ(segment.PageIndexOfFrame(0x12345000), -1);
}

TEST_F(VmTest, SegmentManagerFillsNewPages) {
  class PatternManager : public SegmentManager {
   public:
    void FillPage(Segment& segment, uint32_t page_index, uint8_t* bytes) override {
      (void)segment;
      for (uint32_t i = 0; i < kPageSize; ++i) {
        bytes[i] = static_cast<uint8_t>(page_index + 1);
      }
      ++fills;
    }
    int fills = 0;
  };
  PatternManager manager;
  StdSegment segment(&allocator_, 2 * kPageSize, 0, &manager);
  PhysAddr frame = segment.EnsureFrame(1);
  EXPECT_EQ(manager.fills, 1);
  EXPECT_EQ(memory_.Read(frame, 1), 2u);
}

TEST_F(VmTest, LogSegmentGrowsByExtension) {
  LogSegment log(&allocator_);
  EXPECT_EQ(log.page_count(), 0u);
  log.Extend(3);
  EXPECT_EQ(log.page_count(), 3u);
  EXPECT_TRUE(log.HasFrame(0));
  EXPECT_TRUE(log.HasFrame(2));
}

TEST_F(VmTest, SourceSegmentMustBePageAligned) {
  StdSegment a(&allocator_, kPageSize);
  StdSegment b(&allocator_, kPageSize);
  b.SetSourceSegment(&a, 0);
  EXPECT_EQ(b.source_segment(), &a);
  EXPECT_DEATH(b.SetSourceSegment(&a, 100), "page aligned");
}

TEST_F(VmTest, RegionBindAllocatesDistinctRanges) {
  StdSegment seg_a(&allocator_, 3 * kPageSize);
  StdSegment seg_b(&allocator_, kPageSize);
  Region reg_a(&seg_a);
  Region reg_b(&seg_b);
  AddressSpace as;
  VirtAddr va_a = as.BindRegion(&reg_a);
  VirtAddr va_b = as.BindRegion(&reg_b);
  EXPECT_NE(va_a, 0u);
  EXPECT_EQ(PageOffset(va_a), 0u);
  EXPECT_GE(va_b, va_a + seg_a.size());
  EXPECT_TRUE(reg_a.Contains(va_a));
  EXPECT_TRUE(reg_a.Contains(va_a + seg_a.size() - 1));
  EXPECT_FALSE(reg_a.Contains(va_a + seg_a.size()));
  EXPECT_EQ(as.FindRegion(va_a + kPageSize), &reg_a);
  EXPECT_EQ(as.FindRegion(va_b), &reg_b);
  EXPECT_EQ(as.FindRegion(1), nullptr);
}

TEST_F(VmTest, RegionBindAtFixedAddress) {
  StdSegment segment(&allocator_, kPageSize);
  Region region(&segment);
  AddressSpace as;
  VirtAddr va = as.BindRegion(&region, 0x0100'0000);
  EXPECT_EQ(va, 0x0100'0000u);
  EXPECT_EQ(region.base(), va);
}

TEST_F(VmTest, RegionDoubleBindAborts) {
  StdSegment segment(&allocator_, kPageSize);
  Region region(&segment);
  AddressSpace as;
  as.BindRegion(&region);
  EXPECT_DEATH(as.BindRegion(&region), "already bound");
}

TEST_F(VmTest, OverlappingFixedBindAborts) {
  StdSegment seg_a(&allocator_, 2 * kPageSize);
  StdSegment seg_b(&allocator_, kPageSize);
  Region reg_a(&seg_a);
  Region reg_b(&seg_b);
  AddressSpace as;
  as.BindRegion(&reg_a, 0x0100'0000);
  EXPECT_DEATH(as.BindRegion(&reg_b, 0x0100'1000), "overlaps");
}

TEST_F(VmTest, PageIndexOf) {
  StdSegment segment(&allocator_, 4 * kPageSize);
  Region region(&segment);
  AddressSpace as;
  VirtAddr base = as.BindRegion(&region);
  EXPECT_EQ(region.PageIndexOf(base), 0u);
  EXPECT_EQ(region.PageIndexOf(base + kPageSize + 12), 1u);
  EXPECT_EQ(region.PageIndexOf(base + 4 * kPageSize - 1), 3u);
}

TEST_F(VmTest, TranslateThroughPageTable) {
  AddressSpace as;
  AddressSpace::Pte pte;
  pte.frame = 0x9000;
  pte.write_through = true;
  pte.logged = true;
  as.InstallPte(0x0100'0000, pte);

  Translation translation;
  ASSERT_TRUE(as.Translate(0x0100'0abc, AccessKind::kRead, &translation));
  EXPECT_EQ(translation.paddr, 0x9abcu);
  EXPECT_TRUE(translation.write_through);
  EXPECT_TRUE(translation.logged);
  EXPECT_FALSE(as.Translate(0x0100'1000, AccessKind::kRead, &translation));

  as.RemovePte(0x0100'0000);
  EXPECT_FALSE(as.Translate(0x0100'0abc, AccessKind::kRead, &translation));
}

TEST_F(VmTest, RegionLoggingDefaults) {
  StdSegment segment(&allocator_, kPageSize);
  LogSegment log(&allocator_);
  Region region(&segment);
  EXPECT_FALSE(region.logging_enabled());
  region.SetLogSegment(&log);
  EXPECT_TRUE(region.logging_enabled());
  EXPECT_EQ(region.log_segment(), &log);
  EXPECT_EQ(region.log_mode(), LogMode::kNormal);
}

}  // namespace
}  // namespace lvm
