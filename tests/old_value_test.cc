// Tests of the Section 4.6 old-value capture extension: on-chip records
// carrying the pre-write datum, and undo-based rollback from the log.
#include <gtest/gtest.h>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

class OldValueTest : public ::testing::Test {
 protected:
  OldValueTest() {
    LvmConfig config;
    config.logger_kind = LoggerKind::kOnChip;
    config.onchip_log_old_values = true;
    system_ = std::make_unique<LvmSystem>(config);
    segment_ = system_->CreateSegment(4 * kPageSize);
    region_ = system_->CreateRegion(segment_);
    log_ = system_->CreateLogSegment();
    as_ = system_->CreateAddressSpace();
    base_ = as_->BindRegion(region_);
    system_->AttachLog(region_, log_);
    system_->Activate(as_);
  }

  LogReader Sync() {
    system_->SyncLog(&system_->cpu(), log_);
    return LogReader(system_->memory(), *log_);
  }

  std::unique_ptr<LvmSystem> system_;
  StdSegment* segment_ = nullptr;
  Region* region_ = nullptr;
  LogSegment* log_ = nullptr;
  AddressSpace* as_ = nullptr;
  VirtAddr base_ = 0;
};

TEST_F(OldValueTest, PairsOfRecordsPerWrite) {
  Cpu& cpu = system_->cpu();
  cpu.Write(base_, 10);
  cpu.Write(base_, 20);
  LogReader reader = Sync();
  ASSERT_EQ(reader.size(), 4u);
  // First write: old 0 -> new 10.
  EXPECT_EQ(reader.At(0).flags, kRecordFlagOldValue);
  EXPECT_EQ(reader.At(0).value, 0u);
  EXPECT_EQ(reader.At(1).flags, 0u);
  EXPECT_EQ(reader.At(1).value, 10u);
  // Second write: old 10 -> new 20.
  EXPECT_EQ(reader.At(2).flags, kRecordFlagOldValue);
  EXPECT_EQ(reader.At(2).value, 10u);
  EXPECT_EQ(reader.At(3).value, 20u);
  // Both records of a pair carry the same virtual address.
  EXPECT_EQ(reader.At(0).addr, reader.At(1).addr);
}

TEST_F(OldValueTest, OldValueSeesDeferredSource) {
  // Old-value capture must read through the full memory hierarchy: for a
  // deferred-copy destination, the pre-image is the checkpoint datum.
  StdSegment* checkpoint = system_->CreateSegment(4 * kPageSize);
  StdSegment* working = system_->CreateSegment(4 * kPageSize);
  working->SetSourceSegment(checkpoint);
  Region* working_region = system_->CreateRegion(working);
  LogSegment* working_log = system_->CreateLogSegment();
  VirtAddr wbase = as_->BindRegion(working_region);
  system_->AttachLog(working_region, working_log);
  system_->Activate(as_);  // Reload descriptors for the new region.
  Cpu& cpu = system_->cpu();
  // Seed the checkpoint directly.
  system_->machine().l2().Write(checkpoint->EnsureFrame(0) + 8, 4242, 4);
  cpu.Write(wbase + 8, 7);
  system_->SyncLog(&cpu, working_log);
  LogReader reader(system_->memory(), *working_log);
  ASSERT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.At(0).flags, kRecordFlagOldValue);
  EXPECT_EQ(reader.At(0).value, 4242u);
  EXPECT_EQ(reader.At(1).value, 7u);
}

TEST_F(OldValueTest, UndoRestoresInitialState) {
  Cpu& cpu = system_->cpu();
  for (uint32_t i = 0; i < 20; ++i) {
    cpu.Write(base_ + 4 * (i % 8), 100 + i);
  }
  LogReader reader = Sync();
  LogApplier applier(system_.get());
  applier.UndoVirtual(&cpu, reader, 0, reader.size(), as_);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(cpu.Read(base_ + 4 * i), 0u);
  }
}

TEST_F(OldValueTest, PartialUndoRewindsToMidpoint) {
  Cpu& cpu = system_->cpu();
  cpu.Write(base_, 1);
  cpu.Write(base_ + 4, 2);
  cpu.Write(base_, 3);
  cpu.Write(base_ + 4, 4);
  LogReader reader = Sync();
  ASSERT_EQ(reader.size(), 8u);  // Four pairs.
  LogApplier applier(system_.get());
  // Undo the last two writes (records 4..8): back to {1, 2}.
  applier.UndoVirtual(&cpu, reader, 4, 8, as_);
  EXPECT_EQ(cpu.Read(base_), 1u);
  EXPECT_EQ(cpu.Read(base_ + 4), 2u);
}

TEST_F(OldValueTest, RedoAfterUndoRoundTrips) {
  Cpu& cpu = system_->cpu();
  for (uint32_t i = 0; i < 10; ++i) {
    cpu.Write(base_ + 4 * i, 1000 + i);
  }
  LogReader reader = Sync();
  LogApplier applier(system_.get());
  applier.UndoVirtual(&cpu, reader, 0, reader.size(), as_);
  EXPECT_EQ(cpu.Read(base_), 0u);
  applier.ApplyVirtual(&cpu, reader, 0, reader.size(), as_);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(cpu.Read(base_ + 4 * i), 1000 + i);
  }
}

TEST_F(OldValueTest, ApplyIgnoresPreImages) {
  Cpu& cpu = system_->cpu();
  cpu.Write(base_, 5);
  cpu.Write(base_, 6);
  LogReader reader = Sync();
  // Roll forward onto a zeroed twin space: only new values land.
  StdSegment* twin = system_->CreateSegment(4 * kPageSize);
  Region* twin_region = system_->CreateRegion(twin);
  AddressSpace* twin_as = system_->CreateAddressSpace();
  twin_as->BindRegion(twin_region, base_);
  LogApplier applier(system_.get());
  applier.ApplyVirtual(&cpu, reader, 0, reader.size(), twin_as);
  EXPECT_EQ(system_->memory().Read(twin->FrameAt(0), 4), 6u);
}

TEST(OldValueConfigTest, DisabledByDefault) {
  LvmConfig config;
  config.logger_kind = LoggerKind::kOnChip;
  LvmSystem system(config);
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  system.cpu().Write(base, 1);
  system.SyncLog(&system.cpu(), log);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), 1u);
  EXPECT_EQ(reader.At(0).flags, 0u);
}

}  // namespace
}  // namespace lvm
