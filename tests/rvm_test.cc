// Tests of the two recoverable-memory implementations and the TPC-A
// workload (Section 2.5 / Section 4.2).
#include <gtest/gtest.h>

#include <memory>

#include "src/rvm/ram_disk.h"
#include "src/rvm/rlvm.h"
#include "src/rvm/rvm.h"
#include "src/tpc/tpca.h"

namespace lvm {
namespace {

constexpr uint32_t kStoreBytes = 1u << 20;

// Typed fixture running every store-semantics test against both
// implementations: Rvm and Rlvm must be interchangeable behind
// RecoverableStore.
template <typename StoreT>
class RecoverableStoreTest : public ::testing::Test {
 protected:
  RecoverableStoreTest() {
    as_ = system_.CreateAddressSpace();
    store_ = std::make_unique<StoreT>(&system_, as_, &disk_, kStoreBytes);
    system_.Activate(as_);
  }

  Cpu& cpu() { return system_.cpu(); }

  LvmSystem system_;
  RamDisk disk_;
  AddressSpace* as_ = nullptr;
  std::unique_ptr<StoreT> store_;
};

using StoreTypes = ::testing::Types<Rvm, Rlvm>;

template <typename T>
struct StoreName;
template <>
struct StoreName<Rvm> {
  static constexpr const char* kName = "Rvm";
};
template <>
struct StoreName<Rlvm> {
  static constexpr const char* kName = "Rlvm";
};

class StoreNameGenerator {
 public:
  template <typename T>
  static std::string GetName(int) {
    return StoreName<T>::kName;
  }
};

TYPED_TEST_SUITE(RecoverableStoreTest, StoreTypes, StoreNameGenerator);

TYPED_TEST(RecoverableStoreTest, CommitPersistsWrites) {
  RecoverableStore& store = *this->store_;
  Cpu& cpu = this->cpu();
  VirtAddr a = store.data_base();
  store.Begin(&cpu);
  store.SetRange(&cpu, a, 8);
  store.Write(&cpu, a, 123);
  store.Write(&cpu, a + 4, 456);
  store.Commit(&cpu);
  EXPECT_EQ(store.Read(&cpu, a), 123u);
  EXPECT_EQ(store.Read(&cpu, a + 4), 456u);
  EXPECT_EQ(store.commits(), 1u);
}

TYPED_TEST(RecoverableStoreTest, AbortRestoresOldValues) {
  RecoverableStore& store = *this->store_;
  Cpu& cpu = this->cpu();
  VirtAddr a = store.data_base();
  store.Begin(&cpu);
  store.SetRange(&cpu, a, 4);
  store.Write(&cpu, a, 111);
  store.Commit(&cpu);

  store.Begin(&cpu);
  store.SetRange(&cpu, a, 4);
  store.Write(&cpu, a, 999);
  EXPECT_EQ(store.Read(&cpu, a), 999u);
  store.Abort(&cpu);
  EXPECT_EQ(store.Read(&cpu, a), 111u);
  EXPECT_EQ(store.aborts(), 1u);
}

TYPED_TEST(RecoverableStoreTest, AbortOfMultipleRangesRestoresAll) {
  RecoverableStore& store = *this->store_;
  Cpu& cpu = this->cpu();
  VirtAddr a = store.data_base();
  VirtAddr b = store.data_base() + 2 * kPageSize;  // Different page.
  store.Begin(&cpu);
  store.SetRange(&cpu, a, 4);
  store.Write(&cpu, a, 1);
  store.SetRange(&cpu, b, 4);
  store.Write(&cpu, b, 2);
  store.Commit(&cpu);

  store.Begin(&cpu);
  store.SetRange(&cpu, a, 4);
  store.SetRange(&cpu, b, 4);
  store.Write(&cpu, a, 100);
  store.Write(&cpu, b, 200);
  store.Abort(&cpu);
  EXPECT_EQ(store.Read(&cpu, a), 1u);
  EXPECT_EQ(store.Read(&cpu, b), 2u);
}

TYPED_TEST(RecoverableStoreTest, SequentialTransactionsAccumulate) {
  RecoverableStore& store = *this->store_;
  Cpu& cpu = this->cpu();
  VirtAddr a = store.data_base();
  for (uint32_t i = 1; i <= 20; ++i) {
    store.Begin(&cpu);
    store.SetRange(&cpu, a, 4);
    uint32_t value = store.Read(&cpu, a);
    store.Write(&cpu, a, value + i);
    if (i % 5 == 0) {
      store.Abort(&cpu);
    } else {
      store.Commit(&cpu);
    }
    store.MaybeTruncate(&cpu);
  }
  // Sum of 1..20 minus the aborted 5,10,15,20.
  EXPECT_EQ(store.Read(&cpu, a), 210u - 50u);
}

TYPED_TEST(RecoverableStoreTest, CommitWritesRedoToDisk) {
  RecoverableStore& store = *this->store_;
  Cpu& cpu = this->cpu();
  uint64_t before = this->disk_.total_bytes_logged();
  store.Begin(&cpu);
  store.SetRange(&cpu, store.data_base(), 4);
  store.Write(&cpu, store.data_base(), 7);
  store.Commit(&cpu);
  EXPECT_GT(this->disk_.total_bytes_logged(), before);
  EXPECT_EQ(this->disk_.forces(), 1u);
}

// --- implementation-specific behaviour ---

class RvmOnlyTest : public ::testing::Test {
 protected:
  RvmOnlyTest() {
    as_ = system_.CreateAddressSpace();
    store_ = std::make_unique<Rvm>(&system_, as_, &disk_, kStoreBytes);
    system_.Activate(as_);
  }
  LvmSystem system_;
  RamDisk disk_;
  AddressSpace* as_ = nullptr;
  std::unique_ptr<Rvm> store_;
};

TEST_F(RvmOnlyTest, MissedSetRangeIsALatentBug) {
  // The failure mode Section 2.7 describes: a write without set_range()
  // survives an abort, silently corrupting recoverable state.
  Cpu& cpu = system_.cpu();
  VirtAddr a = store_->data_base();
  store_->Begin(&cpu);
  store_->Write(&cpu, a, 666);  // No set_range!
  store_->Abort(&cpu);
  EXPECT_EQ(store_->unprotected_writes(), 1u);
  EXPECT_EQ(store_->Read(&cpu, a), 666u);  // The "undo" did not undo it.
}

TEST_F(RvmOnlyTest, SingleRecoverableWriteCostsThousandsOfCycles) {
  // Table 3: ~3,515 cycles under RVM.
  Cpu& cpu = system_.cpu();
  VirtAddr a = store_->data_base();
  store_->Begin(&cpu);
  // Warm the line.
  store_->SetRange(&cpu, a, 4);
  store_->Write(&cpu, a, 1);
  Cycles t0 = cpu.now();
  store_->SetRange(&cpu, a, 4);
  store_->Write(&cpu, a, 2);
  Cycles cost = cpu.now() - t0;
  store_->Commit(&cpu);
  EXPECT_GT(cost, 3000u);
  EXPECT_LT(cost, 4000u);
}

class RlvmOnlyTest : public ::testing::Test {
 protected:
  RlvmOnlyTest() {
    as_ = system_.CreateAddressSpace();
    store_ = std::make_unique<Rlvm>(&system_, as_, &disk_, kStoreBytes);
    system_.Activate(as_);
  }
  LvmSystem system_;
  RamDisk disk_;
  AddressSpace* as_ = nullptr;
  std::unique_ptr<Rlvm> store_;
};

TEST_F(RlvmOnlyTest, NoSetRangeNeededForAbort) {
  Cpu& cpu = system_.cpu();
  VirtAddr a = store_->data_base();
  store_->Begin(&cpu);
  store_->Write(&cpu, a, 1);
  store_->Commit(&cpu);
  store_->Begin(&cpu);
  store_->Write(&cpu, a, 2);  // No annotation anywhere.
  store_->Abort(&cpu);
  EXPECT_EQ(store_->Read(&cpu, a), 1u);
}

TEST_F(RlvmOnlyTest, SingleRecoverableWriteIsCheap) {
  // Table 3: a handful of cycles under RLVM (the write-through cost).
  Cpu& cpu = system_.cpu();
  VirtAddr a = store_->data_base();
  store_->Begin(&cpu);
  store_->Write(&cpu, a, 1);  // Warm the mapping.
  cpu.Compute(2000);
  Cycles t0 = cpu.now();
  store_->Write(&cpu, a + 4, 2);
  Cycles cost = cpu.now() - t0;
  store_->Commit(&cpu);
  EXPECT_LE(cost, 20u);
}

TEST_F(RlvmOnlyTest, TransactionIdsAttributeRecords) {
  Cpu& cpu = system_.cpu();
  VirtAddr a = store_->data_base();
  store_->Begin(&cpu);
  EXPECT_EQ(store_->current_transaction(), 1u);
  store_->Write(&cpu, a, 5);
  // Before commit, the log holds the tx-id marker then the data record.
  system_.SyncLog(&cpu, store_->log());
  LogReader reader(system_.memory(), *store_->log());
  ASSERT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.At(0).value, 1u);  // Transaction id.
  EXPECT_EQ(reader.At(1).value, 5u);
  store_->Commit(&cpu);
  // Commit consumed the records.
  LogReader after(system_.memory(), *store_->log());
  EXPECT_EQ(after.size(), 0u);
}

TEST_F(RlvmOnlyTest, CommitThenAbortRollsBackOnlyUncommitted) {
  Cpu& cpu = system_.cpu();
  VirtAddr a = store_->data_base();
  for (uint32_t i = 0; i < 50; ++i) {
    store_->Begin(&cpu);
    store_->Write(&cpu, a + 4 * i, i + 1);
    store_->Commit(&cpu);
  }
  store_->Begin(&cpu);
  for (uint32_t i = 0; i < 50; ++i) {
    store_->Write(&cpu, a + 4 * i, 0xdead);
  }
  store_->Abort(&cpu);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(store_->Read(&cpu, a + 4 * i), i + 1);
  }
}

// --- TPC-A ---

template <typename StoreT>
class TpcATest : public ::testing::Test {
 protected:
  TpcATest() {
    as_ = system_.CreateAddressSpace();
    store_ = std::make_unique<StoreT>(&system_, as_, &disk_, 1u << 20);
    system_.Activate(as_);
    TpcAConfig config;
    config.accounts = 1000;
    config.history_slots = 512;
    tpc_ = std::make_unique<TpcA>(store_.get(), config);
    tpc_->Setup(&system_.cpu());
  }
  LvmSystem system_;
  RamDisk disk_;
  AddressSpace* as_ = nullptr;
  std::unique_ptr<StoreT> store_;
  std::unique_ptr<TpcA> tpc_;
};

TYPED_TEST_SUITE(TpcATest, StoreTypes, StoreNameGenerator);

TYPED_TEST(TpcATest, BalancesStayConsistent) {
  Cpu& cpu = this->system_.cpu();
  for (int i = 0; i < 200; ++i) {
    this->tpc_->RunTransaction(&cpu);
  }
  EXPECT_EQ(this->tpc_->transactions(), 200u);
  EXPECT_TRUE(this->tpc_->CheckConsistency(&cpu));
}

TYPED_TEST(TpcATest, AbortedTransactionsLeaveNoTrace) {
  Cpu& cpu = this->system_.cpu();
  for (int i = 0; i < 50; ++i) {
    this->tpc_->RunTransaction(&cpu);
    this->tpc_->RunAbortedTransaction(&cpu);
  }
  EXPECT_TRUE(this->tpc_->CheckConsistency(&cpu));
}

TYPED_TEST(TpcATest, ThroughputIsFinite) {
  Cpu& cpu = this->system_.cpu();
  Cycles t0 = cpu.now();
  constexpr int kTx = 100;
  for (int i = 0; i < kTx; ++i) {
    this->tpc_->RunTransaction(&cpu);
  }
  Cycles per_tx = (cpu.now() - t0) / kTx;
  // Both systems land in the tens of thousands of cycles per transaction
  // (hundreds of tx/s at 25 MHz), commit dominated.
  EXPECT_GT(per_tx, 20000u);
  EXPECT_LT(per_tx, 200000u);
}

TEST(TpcAComparisonTest, RlvmFasterThanRvmAndCommitsDominate) {
  // Table 3's TPC-A row: RLVM beats RVM, but by less than the single-write
  // gap because commit and truncation costs are unchanged (Section 4.2).
  auto run = [](RecoverableStore* store, LvmSystem* system) {
    TpcAConfig config;
    config.accounts = 1000;
    config.history_slots = 512;
    TpcA tpc(store, config);
    Cpu& cpu = system->cpu();
    tpc.Setup(&cpu);
    Cycles t0 = cpu.now();
    for (int i = 0; i < 300; ++i) {
      tpc.RunTransaction(&cpu);
    }
    return (cpu.now() - t0) / 300;
  };

  LvmSystem sys_rvm;
  RamDisk disk_rvm;
  AddressSpace* as1 = sys_rvm.CreateAddressSpace();
  Rvm rvm(&sys_rvm, as1, &disk_rvm, 1u << 20);
  sys_rvm.Activate(as1);
  Cycles rvm_per_tx = run(&rvm, &sys_rvm);

  LvmSystem sys_rlvm;
  RamDisk disk_rlvm;
  AddressSpace* as2 = sys_rlvm.CreateAddressSpace();
  Rlvm rlvm(&sys_rlvm, as2, &disk_rlvm, 1u << 20);
  sys_rlvm.Activate(as2);
  Cycles rlvm_per_tx = run(&rlvm, &sys_rlvm);

  EXPECT_LT(rlvm_per_tx, rvm_per_tx);
  // Speedup is meaningful (>15%) but far from the ~200x single-write gap.
  double speedup = static_cast<double>(rvm_per_tx) / static_cast<double>(rlvm_per_tx);
  EXPECT_GT(speedup, 1.15);
  EXPECT_LT(speedup, 2.0);
}

}  // namespace
}  // namespace lvm
