// Integration tests of the full LVM system: kernel + logger + VM + machine.
#include <gtest/gtest.h>

#include <vector>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

// The Section 2.2 setup: a logged region over a data segment.
struct LoggedSetup {
  explicit LoggedSetup(LvmSystem* system, uint32_t size = 4 * kPageSize,
                       LogMode mode = LogMode::kNormal) {
    segment = system->CreateSegment(size);
    region = system->CreateRegion(segment);
    log = system->CreateLogSegment();
    as = system->CreateAddressSpace();
    base = as->BindRegion(region);
    system->AttachLog(region, log, mode);
    system->Activate(as);
  }

  StdSegment* segment = nullptr;
  Region* region = nullptr;
  LogSegment* log = nullptr;
  AddressSpace* as = nullptr;
  VirtAddr base = 0;
};

TEST(LvmSystemTest, QuickstartWriteProducesRecord) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();

  cpu.Write(setup.base + 0x10, 4321);
  system.SyncLog(&cpu, setup.log);

  LogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), 1u);
  LogRecord record = reader.At(0);
  EXPECT_EQ(record.value, 4321u);
  EXPECT_EQ(record.size, 4u);
  // The bus logger records the physical address of the write.
  EXPECT_EQ(record.addr, setup.segment->FrameAt(0) + 0x10);
  // The data itself also landed.
  EXPECT_EQ(cpu.Read(setup.base + 0x10), 4321u);
}

TEST(LvmSystemTest, RecordsPreserveProgramOrder) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 100; ++i) {
    cpu.Write(setup.base + 4 * i, i * 7);
    cpu.Compute(300);  // Below the overload rate.
  }
  system.SyncLog(&cpu, setup.log);
  LogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), 100u);
  uint32_t last_timestamp = 0;
  for (uint32_t i = 0; i < 100; ++i) {
    LogRecord record = reader.At(i);
    EXPECT_EQ(record.value, i * 7);
    EXPECT_GE(record.timestamp, last_timestamp);
    last_timestamp = record.timestamp;
  }
}

TEST(LvmSystemTest, VirtualAddressReconstruction) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  cpu.Write(setup.base + kPageSize + 0x24, 9);
  system.SyncLog(&cpu, setup.log);
  LogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), 1u);
  VirtAddr va = 0;
  ASSERT_TRUE(RecordVirtualAddress(reader.At(0), *setup.region, &va));
  EXPECT_EQ(va, setup.base + kPageSize + 0x24);
}

TEST(LvmSystemTest, SubWordWritesLogSizes) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  cpu.Write(setup.base + 0, 0x11, 1);
  cpu.Compute(1000);
  cpu.Write(setup.base + 2, 0x2222, 2);
  cpu.Compute(1000);
  system.SyncLog(&cpu, setup.log);
  LogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.At(0).size, 1u);
  EXPECT_EQ(reader.At(0).value, 0x11u);
  EXPECT_EQ(reader.At(1).size, 2u);
  EXPECT_EQ(reader.At(1).value, 0x2222u);
}

TEST(LvmSystemTest, LogCrossesPageBoundaries) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  constexpr uint32_t kRecords = 3 * (kPageSize / kLogRecordSize) + 5;
  for (uint32_t i = 0; i < kRecords; ++i) {
    cpu.Write(setup.base + 4 * (i % 1024), i);
    cpu.Compute(300);
  }
  system.SyncLog(&cpu, setup.log);
  LogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), kRecords);
  for (uint32_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(reader.At(i).value, i);
  }
  EXPECT_GE(system.logging_faults_handled(), 3u);
}

TEST(LvmSystemTest, UnloggedRegionProducesNoRecords) {
  LvmSystem system;
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.Activate(as);
  Cpu& cpu = system.cpu();
  cpu.Write(base, 1);
  EXPECT_EQ(cpu.logged_writes(), 0u);
  EXPECT_EQ(system.bus_logger()->records_logged(), 0u);
}

TEST(LvmSystemTest, DynamicDisableEnable) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  cpu.Write(setup.base, 1);
  system.SetRegionLogging(setup.region, false);
  cpu.Write(setup.base + 4, 2);
  system.SetRegionLogging(setup.region, true);
  cpu.Write(setup.base + 8, 3);
  system.SyncLog(&cpu, setup.log);
  LogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.At(0).value, 1u);
  EXPECT_EQ(reader.At(1).value, 3u);
}

TEST(LvmSystemTest, DebuggerAttachesLogToRunningProgram) {
  // Section 2.7: logging can be added to an already-running program's
  // region with no change to the program.
  LvmSystem system;
  StdSegment* segment = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.Activate(as);
  Cpu& cpu = system.cpu();
  cpu.Write(base, 1);  // Unlogged: the pages are already mapped.
  LogSegment* log = system.CreateLogSegment();
  system.AttachLog(region, log);
  cpu.Write(base + 4, 2);
  system.SyncLog(&cpu, log);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), 1u);
  EXPECT_EQ(reader.At(0).value, 2u);
}

TEST(LvmSystemTest, MappingFaultReloadsDisplacedEntry) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  cpu.Write(setup.base, 1);
  system.SyncLog(&cpu, setup.log);
  // Simulate a displaced page-mapping entry (a conflicting page would do
  // this in a larger machine); the next record must fault and reload.
  system.bus_logger()->page_mapping_table().Invalidate(setup.segment->FrameAt(0));
  uint64_t faults_before = system.logging_faults_handled();
  cpu.Write(setup.base + 4, 2);
  system.SyncLog(&cpu, setup.log);
  EXPECT_GT(system.logging_faults_handled(), faults_before);
  LogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.At(1).value, 2u);
}

TEST(LvmSystemTest, RecordsLostWithoutExtension) {
  LvmConfig config;
  config.auto_extend_logs = false;
  LvmSystem system(config);
  StdSegment* segment = system.CreateSegment(4 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(/*initial_pages=*/1);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  Cpu& cpu = system.cpu();
  constexpr uint32_t kRecordsPerPage = kPageSize / kLogRecordSize;
  // Two pages worth of records into a one-page log: the second page's worth
  // goes to the absorb page; crossing it twice reports the loss.
  for (uint32_t i = 0; i < 3 * kRecordsPerPage; ++i) {
    cpu.Write(base + 4 * (i % 1024), i);
    cpu.Compute(300);
  }
  system.SyncLog(&cpu, log);
  EXPECT_GT(log->records_lost, 0u);
  LogReader reader(system.memory(), *log);
  EXPECT_EQ(reader.size(), kRecordsPerPage);  // Only the first page kept.
  // Extending resumes real logging.
  system.EnsureLogCapacity(log, 8);
  cpu.Write(base, 4242);
  system.SyncLog(&cpu, log);
  LogReader reader2(system.memory(), *log);
  EXPECT_EQ(reader2.size(), kRecordsPerPage + 1);
  EXPECT_EQ(reader2.At(kRecordsPerPage).value, 4242u);
}

TEST(LvmSystemTest, TruncateEmptiesLog) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 10; ++i) {
    cpu.Write(setup.base + 4 * i, i);
    cpu.Compute(300);
  }
  system.TruncateLog(&cpu, setup.log);
  LogReader empty(system.memory(), *setup.log);
  EXPECT_EQ(empty.size(), 0u);
  cpu.Write(setup.base, 77);
  system.SyncLog(&cpu, setup.log);
  LogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), 1u);
  EXPECT_EQ(reader.At(0).value, 77u);
}

TEST(LvmSystemTest, OverloadSuspendsAndRecovers) {
  LvmSystem system;
  LoggedSetup setup(&system, 16 * kPageSize);
  Cpu& cpu = system.cpu();
  // Logged writes with no computation overload the logger (Section 4.5.3).
  constexpr uint32_t kWrites = 2000;
  for (uint32_t i = 0; i < kWrites; ++i) {
    cpu.Write(setup.base + 4 * (i % (4 * 1024)), i);
  }
  system.SyncLog(&cpu, setup.log);
  EXPECT_GT(system.overload_suspensions(), 0u);
  LogReader reader(system.memory(), *setup.log);
  EXPECT_EQ(reader.size(), kWrites);  // Nothing lost, just slowed down.
  // Each overload event costs well over 30,000 cycles (Section 4.5.3).
  EXPECT_GT(cpu.now(), system.overload_suspensions() * 30000u);
}

TEST(LvmSystemTest, PacedWritesNeverOverload) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 2000; ++i) {
    cpu.Write(setup.base + 4 * (i % 1024), i);
    cpu.Compute(300);
  }
  EXPECT_EQ(system.overload_suspensions(), 0u);
}

TEST(LvmSystemTest, TwoProcessesSeparateLogs) {
  // Two address spaces over distinct segments log to separate segments, so
  // their streams are not intermixed (Section 2.1).
  LvmSystem system;
  LoggedSetup a(&system);
  LoggedSetup b(&system);
  Cpu& cpu = system.cpu();
  system.Activate(a.as);
  cpu.Write(a.base, 1);
  cpu.Compute(1000);
  system.Activate(b.as);
  cpu.Write(b.base, 2);
  cpu.Compute(1000);
  system.Activate(a.as);
  cpu.Write(a.base + 4, 3);
  system.SyncLog(&cpu, a.log);
  system.SyncLog(&cpu, b.log);
  LogReader ra(system.memory(), *a.log);
  LogReader rb(system.memory(), *b.log);
  ASSERT_EQ(ra.size(), 2u);
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_EQ(ra.At(0).value, 1u);
  EXPECT_EQ(ra.At(1).value, 3u);
  EXPECT_EQ(rb.At(0).value, 2u);
}

TEST(LvmSystemTest, BusLoggerOneLogPerSegment) {
  // Prototype restriction (Section 3.1.2).
  LvmSystem system;
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* r1 = system.CreateRegion(segment);
  Region* r2 = system.CreateRegion(segment);
  LogSegment* l1 = system.CreateLogSegment();
  LogSegment* l2 = system.CreateLogSegment();
  system.AttachLog(r1, l1);
  EXPECT_DEATH(system.AttachLog(r2, l2), "single log per segment");
}

TEST(LvmSystemTest, DirectMappedMode) {
  LvmSystem system;
  LoggedSetup setup(&system, 2 * kPageSize, LogMode::kDirectMapped);
  Cpu& cpu = system.cpu();
  cpu.Write(setup.base + 0x40, 123);
  cpu.Write(setup.base + kPageSize + 0x80, 456);
  system.SyncLog(&cpu, setup.log);
  // The log segment mirrors the data segment at corresponding offsets.
  EXPECT_EQ(system.memory().Read(setup.log->FrameAt(0) + 0x40, 4), 123u);
  EXPECT_EQ(system.memory().Read(setup.log->FrameAt(1) + 0x80, 4), 456u);
}

TEST(LvmSystemTest, IndexedMode) {
  LvmSystem system;
  LoggedSetup setup(&system, kPageSize, LogMode::kIndexed);
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 8; ++i) {
    cpu.Write(setup.base + 4 * i, 100 + i);
    cpu.Compute(1000);
  }
  system.SyncLog(&cpu, setup.log);
  IndexedLogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(reader.At(i), 100 + i);
  }
}

TEST(LvmSystemTest, OnChipLoggerVirtualAddresses) {
  LvmConfig config;
  config.logger_kind = LoggerKind::kOnChip;
  LvmSystem system(config);
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  cpu.Write(setup.base + 0x30, 5);
  system.SyncLog(&cpu, setup.log);
  LogReader reader(system.memory(), *setup.log);
  ASSERT_EQ(reader.size(), 1u);
  // Section 4.6: records carry the virtual address.
  EXPECT_EQ(reader.At(0).addr, setup.base + 0x30);
  EXPECT_EQ(reader.At(0).value, 5u);
  // Logged pages stay copyback-cached: no write-through cost, no overload.
  EXPECT_EQ(system.overload_suspensions(), 0u);
}

TEST(LvmSystemTest, OnChipLoggerPerRegionLogsOnSharedSegment) {
  // The on-chip design lifts the one-log-per-segment restriction: two
  // regions over the same segment log to different segments.
  LvmConfig config;
  config.logger_kind = LoggerKind::kOnChip;
  LvmSystem system(config);
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* r1 = system.CreateRegion(segment);
  Region* r2 = system.CreateRegion(segment);
  LogSegment* l1 = system.CreateLogSegment();
  LogSegment* l2 = system.CreateLogSegment();
  AddressSpace* as1 = system.CreateAddressSpace();
  AddressSpace* as2 = system.CreateAddressSpace();
  VirtAddr b1 = as1->BindRegion(r1);
  VirtAddr b2 = as2->BindRegion(r2);
  system.AttachLog(r1, l1);
  system.AttachLog(r2, l2);
  Cpu& cpu = system.cpu();
  system.Activate(as1);
  cpu.Write(b1, 11);
  cpu.Compute(100);
  system.Activate(as2);
  cpu.Write(b2 + 4, 22);
  system.SyncLog(&cpu, l1);
  system.SyncLog(&cpu, l2);
  LogReader ra(system.memory(), *l1);
  LogReader rb(system.memory(), *l2);
  ASSERT_EQ(ra.size(), 1u);
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_EQ(ra.At(0).value, 11u);
  EXPECT_EQ(rb.At(0).value, 22u);
  // Both writes hit the same physical word.
  EXPECT_EQ(system.memory().Read(segment->FrameAt(0) + 4, 4), 22u);
}

TEST(LvmSystemTest, OnChipLoggedWriteCostNearUnlogged) {
  // Section 4.6: with on-chip support a logged write costs essentially the
  // same as an unlogged write.
  LvmConfig config;
  config.logger_kind = LoggerKind::kOnChip;
  LvmSystem system(config);
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  system.TouchRegion(&cpu, setup.region);
  Cycles start = cpu.now();
  for (uint32_t i = 0; i < 1000; ++i) {
    cpu.Write(setup.base + 4 * (i % 1024), i);
    cpu.Compute(50);
  }
  // Per-write cost stays within ~2 cycles of an unlogged write (the
  // remainder is the occasional synchronous log-extension fixup).
  Cycles logged_cost = cpu.now() - start - 1000 * 50;
  EXPECT_LE(logged_cost, 1000 * (system.machine().params().unlogged_write_cycles + 2));
}

TEST(LvmSystemTest, PageFaultOutsideAnyRegionAborts) {
  LvmSystem system;
  AddressSpace* as = system.CreateAddressSpace();
  system.Activate(as);
  EXPECT_DEATH(system.cpu().Read(0x0040'0000), "unresolvable page fault");
}

TEST(LvmSystemTest, LogApplierRollForward) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 10; ++i) {
    cpu.Write(setup.base + 4 * i, i + 1);
    cpu.Compute(300);
  }
  system.SyncLog(&cpu, setup.log);
  // Clobber memory, then roll the log forward to reconstruct it.
  for (uint32_t i = 0; i < 10; ++i) {
    system.machine().l2().Write(setup.segment->FrameAt(0) + 4 * i, 0, 4);
  }
  LogReader reader(system.memory(), *setup.log);
  LogApplier applier(&system);
  applier.ApplyPhysical(&cpu, reader, 0, reader.size());
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(cpu.Read(setup.base + 4 * i), i + 1);
  }
}

TEST(LvmSystemTest, LogApplierRetargetsToCheckpoint) {
  LvmSystem system;
  LoggedSetup setup(&system);
  Cpu& cpu = system.cpu();
  StdSegment* checkpoint = system.CreateSegment(setup.segment->size());
  cpu.Write(setup.base + 4, 42);
  cpu.Write(setup.base + kPageSize + 8, 43);
  system.SyncLog(&cpu, setup.log);
  LogReader reader(system.memory(), *setup.log);
  LogApplier applier(&system);
  applier.ApplyRetargeted(&cpu, reader, 0, reader.size(), *setup.segment, checkpoint);
  EXPECT_EQ(system.memory().Read(checkpoint->FrameAt(0) + 4, 4), 42u);
  EXPECT_EQ(system.memory().Read(checkpoint->FrameAt(1) + 8, 4), 43u);
}

}  // namespace
}  // namespace lvm
