// Tests of the deferred-copy mechanism end to end (Section 3.3 and Table 1).
#include <gtest/gtest.h>

#include <vector>

#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

// The Figure 3 memory structure minus the log: a checkpoint segment that is
// the deferred-copy source of a working segment, both bound into one address
// space.
class DeferredCopyTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kSegmentSize = 8 * kPageSize;

  DeferredCopyTest() {
    checkpoint_ = system_.CreateSegment(kSegmentSize);
    working_ = system_.CreateSegment(kSegmentSize);
    working_->SetSourceSegment(checkpoint_);
    as_ = system_.CreateAddressSpace();
    checkpoint_region_ = system_.CreateRegion(checkpoint_);
    working_region_ = system_.CreateRegion(working_);
    checkpoint_base_ = as_->BindRegion(checkpoint_region_);
    working_base_ = as_->BindRegion(working_region_);
    system_.Activate(as_);
  }

  // Seeds the checkpoint with value(i) at word i.
  void SeedCheckpoint() {
    Cpu& cpu = system_.cpu();
    for (uint32_t i = 0; i < kSegmentSize / 4; ++i) {
      cpu.Write(checkpoint_base_ + 4 * i, CheckpointWord(i));
    }
  }

  static uint32_t CheckpointWord(uint32_t i) { return 0xc0000000u + i; }

  LvmSystem system_;
  StdSegment* checkpoint_ = nullptr;
  StdSegment* working_ = nullptr;
  Region* checkpoint_region_ = nullptr;
  Region* working_region_ = nullptr;
  AddressSpace* as_ = nullptr;
  VirtAddr checkpoint_base_ = 0;
  VirtAddr working_base_ = 0;
};

TEST_F(DeferredCopyTest, InitialReadsComeFromSource) {
  SeedCheckpoint();
  Cpu& cpu = system_.cpu();
  EXPECT_EQ(cpu.Read(working_base_), CheckpointWord(0));
  EXPECT_EQ(cpu.Read(working_base_ + kPageSize + 40), CheckpointWord((kPageSize + 40) / 4));
}

TEST_F(DeferredCopyTest, WritesShadowWithoutTouchingSource) {
  SeedCheckpoint();
  Cpu& cpu = system_.cpu();
  cpu.Write(working_base_ + 8, 999);
  EXPECT_EQ(cpu.Read(working_base_ + 8), 999u);
  // Neighbouring words of the same line still show source data.
  EXPECT_EQ(cpu.Read(working_base_ + 12), CheckpointWord(3));
  // The source is untouched.
  EXPECT_EQ(cpu.Read(checkpoint_base_ + 8), CheckpointWord(2));
}

TEST_F(DeferredCopyTest, ResetRestoresSourceView) {
  SeedCheckpoint();
  Cpu& cpu = system_.cpu();
  for (uint32_t i = 0; i < 100; ++i) {
    cpu.Write(working_base_ + 4 * i, i);
  }
  system_.ResetDeferredCopy(&cpu, as_, working_base_, working_base_ + kSegmentSize);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(cpu.Read(working_base_ + 4 * i), CheckpointWord(i));
  }
}

TEST_F(DeferredCopyTest, ResetAfterWritebackStillRestores) {
  SeedCheckpoint();
  Cpu& cpu = system_.cpu();
  cpu.Write(working_base_, 111);
  // Force the dirty line out of the cache: its source flips to the
  // destination...
  system_.FlushSegment(&cpu, working_);
  EXPECT_EQ(cpu.Read(working_base_), 111u);
  // ...but reset re-points it at the source.
  system_.ResetDeferredCopy(&cpu, as_, working_base_, working_base_ + kSegmentSize);
  EXPECT_EQ(cpu.Read(working_base_), CheckpointWord(0));
}

TEST_F(DeferredCopyTest, ResetIsRangeLimited) {
  SeedCheckpoint();
  Cpu& cpu = system_.cpu();
  cpu.Write(working_base_, 111);                 // Page 0.
  cpu.Write(working_base_ + kPageSize, 222);     // Page 1.
  system_.ResetDeferredCopy(&cpu, as_, working_base_, working_base_ + kPageSize);
  EXPECT_EQ(cpu.Read(working_base_), CheckpointWord(0));
  EXPECT_EQ(cpu.Read(working_base_ + kPageSize), 222u);
}

TEST_F(DeferredCopyTest, RepeatedWriteResetCycles) {
  SeedCheckpoint();
  Cpu& cpu = system_.cpu();
  for (int round = 0; round < 5; ++round) {
    for (uint32_t i = 0; i < 64; ++i) {
      cpu.Write(working_base_ + 4 * i, 1000u * static_cast<uint32_t>(round) + i);
    }
    EXPECT_EQ(cpu.Read(working_base_), 1000u * static_cast<uint32_t>(round));
    system_.ResetDeferredCopy(&cpu, as_, working_base_, working_base_ + kSegmentSize);
    EXPECT_EQ(cpu.Read(working_base_), CheckpointWord(0));
  }
}

TEST_F(DeferredCopyTest, AdvancingCheckpointShowsThroughCleanPages) {
  // Rolling the checkpoint segment forward (CULT) changes what unmodified
  // working pages read.
  SeedCheckpoint();
  Cpu& cpu = system_.cpu();
  EXPECT_EQ(cpu.Read(working_base_ + 4), CheckpointWord(1));
  cpu.Write(checkpoint_base_ + 4, 31337);
  EXPECT_EQ(cpu.Read(working_base_ + 4), 31337u);
}

TEST_F(DeferredCopyTest, CopySegmentMatchesEffectiveContents) {
  SeedCheckpoint();
  Cpu& cpu = system_.cpu();
  cpu.Write(working_base_ + 16, 5555);
  StdSegment* snapshot = system_.CreateSegment(kSegmentSize);
  system_.CopySegment(&cpu, snapshot, working_);
  // The snapshot sees the modified word and source data everywhere else.
  EXPECT_EQ(system_.memory().Read(snapshot->FrameAt(0) + 16, 4), 5555u);
  EXPECT_EQ(system_.memory().Read(snapshot->FrameAt(0) + 20, 4), CheckpointWord(5));
  EXPECT_EQ(system_.memory().Read(snapshot->FrameAt(1) + 0, 4),
            CheckpointWord(kPageSize / 4));
}

TEST_F(DeferredCopyTest, CopySegmentIntoDeferredDestinationDiverges) {
  SeedCheckpoint();
  Cpu& cpu = system_.cpu();
  StdSegment* other = system_.CreateSegment(kSegmentSize);
  for (uint32_t i = 0; i < kSegmentSize / 4; ++i) {
    system_.memory().Write(other->EnsureFrame(PageNumber(4 * i)) + PageOffset(4 * i),
                           7000 + i, 4);
  }
  system_.CopySegment(&cpu, working_, other);
  EXPECT_EQ(cpu.Read(working_base_), 7000u);
  // A later reset still rolls back to the checkpoint.
  system_.ResetDeferredCopy(&cpu, as_, working_base_, working_base_ + kSegmentSize);
  EXPECT_EQ(cpu.Read(working_base_), CheckpointWord(0));
}

TEST_F(DeferredCopyTest, ResetCostScalesWithDirtyData) {
  SeedCheckpoint();
  system_.TouchRegion(&system_.cpu(), working_region_);
  Cpu& cpu = system_.cpu();

  // Dirty one page, measure reset.
  for (uint32_t i = 0; i < kPageSize / 4; ++i) {
    cpu.Write(working_base_ + 4 * i, i);
  }
  cpu.DrainWriteBuffer();
  Cycles t0 = cpu.now();
  system_.ResetDeferredCopy(&cpu, as_, working_base_, working_base_ + kSegmentSize);
  Cycles one_page = cpu.now() - t0;

  // Dirty four pages, measure reset.
  for (uint32_t i = 0; i < 4 * kPageSize / 4; ++i) {
    cpu.Write(working_base_ + 4 * i, i);
  }
  cpu.DrainWriteBuffer();
  t0 = cpu.now();
  system_.ResetDeferredCopy(&cpu, as_, working_base_, working_base_ + kSegmentSize);
  Cycles four_pages = cpu.now() - t0;

  EXPECT_GT(four_pages, one_page);
  // Roughly linear in dirty pages beyond the fixed per-page sweep.
  const MachineParams& p = system_.machine().params();
  Cycles fixed = 8 * p.reset_page_cycles;
  Cycles dirty_page_cost =
      p.reset_dirty_page_cycles + kLinesPerPage * p.reset_dirty_line_cycles;
  EXPECT_EQ(one_page, fixed + dirty_page_cost);
  EXPECT_EQ(four_pages, fixed + 4 * dirty_page_cost);
}

TEST_F(DeferredCopyTest, ResetBeatsCopyWhenFewPagesDirty) {
  // Figure 9's headline: resetDeferredCopy() far outperforms bcopy() when
  // only a small portion of the segment is dirty.
  SeedCheckpoint();
  system_.TouchRegion(&system_.cpu(), working_region_);
  Cpu& cpu = system_.cpu();
  cpu.Write(working_base_, 1);
  cpu.DrainWriteBuffer();

  Cycles t0 = cpu.now();
  system_.ResetDeferredCopy(&cpu, as_, working_base_, working_base_ + kSegmentSize);
  Cycles reset_cost = cpu.now() - t0;

  t0 = cpu.now();
  system_.CopySegment(&cpu, working_, checkpoint_);
  Cycles copy_cost = cpu.now() - t0;

  EXPECT_LT(reset_cost * 5, copy_cost);
}

TEST_F(DeferredCopyTest, CopyBeatsResetWhenEverythingDirty) {
  // ...and the crossover near two-thirds dirty means a fully dirty segment
  // favours the plain copy.
  SeedCheckpoint();
  system_.TouchRegion(&system_.cpu(), working_region_);
  Cpu& cpu = system_.cpu();
  for (uint32_t i = 0; i < kSegmentSize / 4; ++i) {
    cpu.Write(working_base_ + 4 * i, i);
  }
  cpu.DrainWriteBuffer();

  Cycles t0 = cpu.now();
  system_.ResetDeferredCopy(&cpu, as_, working_base_, working_base_ + kSegmentSize);
  Cycles reset_cost = cpu.now() - t0;

  t0 = cpu.now();
  system_.CopySegment(&cpu, working_, checkpoint_);
  Cycles copy_cost = cpu.now() - t0;

  EXPECT_GT(reset_cost, copy_cost);
}

TEST(DeferredCopyMapTest, ResolveAndWriteback) {
  DeferredCopyMap map;
  map.MapPage(0x4000, 0x8000);
  EXPECT_TRUE(map.IsMapped(0x4000));
  EXPECT_EQ(map.ResolveClean(0x4010), 0x8010u);
  EXPECT_EQ(map.ResolveClean(0x5010), 0x5010u);  // Unmapped page: identity.
  map.OnLineWriteback(0x4010);
  EXPECT_EQ(map.ResolveClean(0x4010), 0x4010u);
  EXPECT_EQ(map.ResolveClean(0x4020), 0x8020u);
  EXPECT_EQ(map.WrittenBackLines(0x4000), 1u);
  EXPECT_EQ(map.ResetPage(0x4000), 1u);
  EXPECT_EQ(map.ResolveClean(0x4010), 0x8010u);
}

TEST(DeferredCopyMapTest, MarkAllWrittenBack) {
  DeferredCopyMap map;
  map.MapPage(0x4000, 0x8000);
  map.MarkAllWrittenBack(0x4000);
  EXPECT_EQ(map.WrittenBackLines(0x4000), kLinesPerPage);
  EXPECT_EQ(map.ResolveClean(0x4ff0), 0x4ff0u);
}

TEST(DeferredCopyMapTest, UnmapRestoresIdentity) {
  DeferredCopyMap map;
  map.MapPage(0x4000, 0x8000);
  map.UnmapPage(0x4000);
  EXPECT_FALSE(map.IsMapped(0x4000));
  EXPECT_EQ(map.ResolveClean(0x4010), 0x4010u);
}

}  // namespace
}  // namespace lvm
