// Property-based tests: the logging system against a shadow reference
// model, swept over logger kinds and workload shapes with parameterized
// gtest.
//
// Invariants checked on randomized write streams:
//   P1. completeness — every write to a logged region produces exactly one
//       record (none lost while capacity is available);
//   P2. order — records appear in program order with monotone timestamps;
//   P3. fidelity — each record's (address, value, size) matches the write
//       that produced it;
//   P4. memory — the data segment's final contents equal a shadow model's;
//   P5. replay — applying the log to a zeroed segment of the same shape
//       reproduces every logged byte.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

struct PropertyCase {
  const char* name;
  LoggerKind logger;
  // Mean compute cycles between writes (0 = back to back, overload-prone).
  uint32_t pacing;
  // Allowed write sizes.
  bool mixed_sizes;
  uint64_t seed;
};

struct ShadowWrite {
  uint32_t offset;
  uint32_t value;
  uint8_t size;
};

class LoggingPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(LoggingPropertyTest, RandomStreamInvariants) {
  const PropertyCase& param = GetParam();
  LvmConfig config;
  config.logger_kind = param.logger;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();

  constexpr uint32_t kRegionBytes = 16 * kPageSize;
  StdSegment* segment = system.CreateSegment(kRegionBytes);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);

  // Issue a random write stream, mirrored into a shadow byte array.
  Rng rng(param.seed);
  std::vector<uint8_t> shadow(kRegionBytes, 0);
  std::vector<ShadowWrite> issued;
  constexpr uint32_t kWrites = 3000;
  for (uint32_t i = 0; i < kWrites; ++i) {
    uint8_t size = 4;
    if (param.mixed_sizes) {
      const uint8_t kSizes[] = {1, 2, 4};
      size = kSizes[rng.Uniform(3)];
    }
    uint32_t offset =
        static_cast<uint32_t>(rng.Uniform(kRegionBytes / size)) * size;
    auto value = static_cast<uint32_t>(rng.Next64());
    if (size < 4) {
      value &= (1u << (8 * size)) - 1;
    }
    cpu.Write(base + offset, value, size);
    std::memcpy(&shadow[offset], &value, size);
    issued.push_back(ShadowWrite{offset, value, size});
    if (param.pacing > 0) {
      cpu.Compute(param.pacing);
    }
  }
  system.SyncLog(&cpu, log);

  // P1: completeness.
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), issued.size());
  EXPECT_EQ(log->records_lost, 0u);

  // P2 + P3: order, fidelity, monotone timestamps.
  uint32_t last_timestamp = 0;
  for (size_t i = 0; i < issued.size(); ++i) {
    LogRecord record = reader.At(i);
    VirtAddr va = 0;
    if (param.logger == LoggerKind::kOnChip) {
      // Section 4.6: on-chip records carry the virtual address directly.
      va = record.addr;
    } else {
      ASSERT_TRUE(RecordVirtualAddress(record, *region, &va)) << "record " << i;
    }
    EXPECT_EQ(va, base + issued[i].offset) << "record " << i;
    EXPECT_EQ(record.value, issued[i].value) << "record " << i;
    EXPECT_EQ(record.size, issued[i].size) << "record " << i;
    EXPECT_GE(record.timestamp, last_timestamp) << "record " << i;
    last_timestamp = record.timestamp;
  }

  // P4: memory state equals the shadow.
  for (uint32_t offset = 0; offset < kRegionBytes; offset += 4) {
    uint32_t expected = 0;
    std::memcpy(&expected, &shadow[offset], 4);
    ASSERT_EQ(cpu.Read(base + offset), expected) << "offset " << offset;
  }

  // P5: replaying the log onto a fresh segment reproduces the state.
  StdSegment* replay = system.CreateSegment(kRegionBytes);
  LogApplier applier(&system);
  if (param.logger == LoggerKind::kBusLogger) {
    applier.ApplyRetargeted(&cpu, reader, 0, reader.size(), *segment, replay);
  } else {
    // Virtual records: retarget through a region binding in a fresh space.
    Region* replay_region = system.CreateRegion(replay);
    AddressSpace* replay_as = system.CreateAddressSpace();
    replay_as->BindRegion(replay_region, base);
    applier.ApplyVirtual(&cpu, reader, 0, reader.size(), replay_as);
  }
  for (uint32_t offset = 0; offset < kRegionBytes; offset += 4) {
    if (!replay->HasFrame(PageNumber(offset))) {
      continue;  // Never logged: stays zero, and the shadow agrees below.
    }
    uint32_t expected = 0;
    std::memcpy(&expected, &shadow[offset], 4);
    uint32_t actual = system.memory().Read(
        replay->FrameAt(PageNumber(offset)) + PageOffset(offset), 4);
    ASSERT_EQ(actual, expected) << "replayed offset " << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoggingPropertyTest,
    ::testing::Values(
        PropertyCase{"bus_paced_words", LoggerKind::kBusLogger, 300, false, 1},
        PropertyCase{"bus_paced_mixed", LoggerKind::kBusLogger, 300, true, 2},
        PropertyCase{"bus_bursty_words", LoggerKind::kBusLogger, 0, false, 3},
        PropertyCase{"bus_bursty_mixed", LoggerKind::kBusLogger, 0, true, 4},
        PropertyCase{"onchip_paced_words", LoggerKind::kOnChip, 300, false, 5},
        PropertyCase{"onchip_bursty_mixed", LoggerKind::kOnChip, 0, true, 6},
        PropertyCase{"bus_paced_words_alt_seed", LoggerKind::kBusLogger, 50, false, 7},
        PropertyCase{"onchip_paced_mixed", LoggerKind::kOnChip, 50, true, 8}),
    [](const ::testing::TestParamInfo<PropertyCase>& param_info) {
      return std::string(param_info.param.name);
    });

// The ApplyVirtual path used above needs the replay region mapped at the
// same base; a dedicated test pins that behaviour.
TEST(LogApplierTest, ApplyVirtualTranslatesThroughGivenSpace) {
  LvmConfig config;
  config.logger_kind = LoggerKind::kOnChip;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  cpu.Write(base + 8, 77);
  system.SyncLog(&cpu, log);

  StdSegment* other = system.CreateSegment(kPageSize);
  Region* other_region = system.CreateRegion(other);
  AddressSpace* other_as = system.CreateAddressSpace();
  other_as->BindRegion(other_region, base);
  LogReader reader(system.memory(), *log);
  LogApplier applier(&system);
  applier.ApplyVirtual(&cpu, reader, 0, reader.size(), other_as);
  EXPECT_EQ(system.memory().Read(other->FrameAt(0) + 8, 4), 77u);
}

}  // namespace
}  // namespace lvm
