// Parameterized machine-model tests: the measured cost of each Table 2
// operation must track its MachineParams knob across a grid of alternative
// machines (faster buses, slower DMA, different timestamp rates), and the
// virtual-address ASIC option must change record addressing without
// changing anything else.
#include <gtest/gtest.h>

#include <string>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

struct MachinePoint {
  const char* name;
  uint32_t write_through_total;
  uint32_t write_through_bus;
  uint32_t block_total;
  uint32_t unlogged;
  uint32_t timestamp_divider;
};

class MachineGridTest : public ::testing::TestWithParam<MachinePoint> {};

TEST_P(MachineGridTest, MeasuredCostsTrackParameters) {
  const MachinePoint& point = GetParam();
  MachineParams params;
  params.word_write_through_total = point.write_through_total;
  params.word_write_through_bus = point.write_through_bus;
  params.cache_block_write_total = point.block_total;
  params.unlogged_write_cycles = point.unlogged;
  params.timestamp_divider = point.timestamp_divider;
  LvmConfig config;
  config.params = params;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();

  StdSegment* segment = system.CreateSegment(4 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  system.TouchRegion(&cpu, region);
  cpu.DrainWriteBuffer();
  cpu.Compute(10000);

  // Isolated write-through word: end-to-end == configured total.
  Cycles t0 = cpu.now();
  cpu.Write(base + 64, 1);
  cpu.DrainWriteBuffer();
  EXPECT_EQ(cpu.now() - t0, point.write_through_total);

  // Unlogged write cost.
  StdSegment* plain = system.CreateSegment(kPageSize);
  Region* plain_region = system.CreateRegion(plain);
  VirtAddr plain_base = as->BindRegion(plain_region);
  system.TouchRegion(&cpu, plain_region);
  t0 = cpu.now();
  cpu.Write(plain_base, 1);
  EXPECT_EQ(cpu.now() - t0, point.unlogged);

  // Block writeback cost.
  system.FlushSegment(&cpu, plain);
  cpu.Write(plain_base + 128, 2);
  t0 = cpu.now();
  system.FlushSegment(&cpu, plain);
  EXPECT_EQ(cpu.now() - t0, point.block_total);

  // Timestamp granularity: two writes `gap` cycles apart differ by
  // ~gap / divider ticks.
  cpu.Compute(5000);
  cpu.Write(base + 128, 1);
  constexpr Cycles kGap = 4000;
  cpu.Compute(kGap);
  cpu.Write(base + 132, 2);
  system.SyncLog(&cpu, log);
  LogReader reader(system.memory(), *log);
  ASSERT_GE(reader.size(), 3u);
  LogRecord a = reader.At(reader.size() - 2);
  LogRecord b = reader.At(reader.size() - 1);
  double expected_ticks = static_cast<double>(kGap) / point.timestamp_divider;
  EXPECT_NEAR(static_cast<double>(b.timestamp - a.timestamp), expected_ticks,
              expected_ticks * 0.05 + 4);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MachineGridTest,
    ::testing::Values(MachinePoint{"paper_machine", 6, 5, 9, 2, 4},
                      MachinePoint{"fast_bus", 3, 2, 5, 2, 4},
                      MachinePoint{"slow_bus", 12, 10, 18, 2, 4},
                      MachinePoint{"slow_copyback", 6, 5, 9, 6, 4},
                      MachinePoint{"fine_timestamps", 6, 5, 9, 2, 1},
                      MachinePoint{"coarse_timestamps", 6, 5, 9, 2, 16}),
    [](const ::testing::TestParamInfo<MachinePoint>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(VirtualRecordsTest, BusLoggerEmitsVirtualAddressesWhenConfigured) {
  LvmConfig config;
  config.bus_logger_virtual_records = true;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  cpu.Write(base + 0x14, 7);
  cpu.Write(base + kPageSize + 0x28, 8);
  system.SyncLog(&cpu, log);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.At(0).addr, base + 0x14);
  EXPECT_EQ(reader.At(1).addr, base + kPageSize + 0x28);
}

TEST(VirtualRecordsTest, SurvivesMappingFaultReload) {
  LvmConfig config;
  config.bus_logger_virtual_records = true;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  cpu.Write(base, 1);
  system.SyncLog(&cpu, log);
  // Displace the entry; the kernel reload must restore the reverse
  // translation too.
  system.bus_logger()->page_mapping_table().Invalidate(segment->FrameAt(0));
  cpu.Write(base + 4, 2);
  system.SyncLog(&cpu, log);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.At(1).addr, base + 4);
}

TEST(VirtualRecordsTest, DefaultRemainsPhysical) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  cpu.Write(base + 8, 3);
  system.SyncLog(&cpu, log);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), 1u);
  EXPECT_EQ(reader.At(0).addr, segment->FrameAt(0) + 8);
}

}  // namespace
}  // namespace lvm
