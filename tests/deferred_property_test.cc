// Property-based tests of deferred copy: random interleavings of writes,
// flushes, resets and checkpoint advances against a shadow model that
// mirrors the hardware's *line-granularity* semantics: the first write to
// a line fills it from the checkpoint, after which checkpoint writes no
// longer show through that line until a reset.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

constexpr uint32_t kBytes = 4 * kPageSize;

// Shadow model with explicit line divergence.
class Shadow {
 public:
  Shadow() : checkpoint_(kBytes, 0), working_(kBytes, 0), diverged_(kBytes / kLineSize, 0) {}

  void WriteWorking(uint32_t offset, uint32_t value) {
    uint32_t line = offset / kLineSize;
    if (diverged_[line] == 0) {
      // Fill-on-write: the line's other words snapshot the checkpoint.
      std::memcpy(&working_[line * kLineSize], &checkpoint_[line * kLineSize], kLineSize);
      diverged_[line] = 1;
    }
    std::memcpy(&working_[offset], &value, 4);
  }

  void WriteCheckpoint(uint32_t offset, uint32_t value) {
    std::memcpy(&checkpoint_[offset], &value, 4);
  }

  uint32_t ReadWorking(uint32_t offset) const {
    const std::vector<uint8_t>& source =
        diverged_[offset / kLineSize] != 0 ? working_ : checkpoint_;
    uint32_t value = 0;
    std::memcpy(&value, &source[offset], 4);
    return value;
  }

  void Reset() { std::fill(diverged_.begin(), diverged_.end(), 0); }

 private:
  std::vector<uint8_t> checkpoint_;
  std::vector<uint8_t> working_;
  std::vector<uint8_t> diverged_;
};

struct DeferredCase {
  const char* name;
  uint64_t seed;
  double write_probability;
  double reset_probability;
  double flush_probability;
};

class DeferredPropertyTest : public ::testing::TestWithParam<DeferredCase> {};

TEST_P(DeferredPropertyTest, RandomOpsMatchShadow) {
  const DeferredCase& param = GetParam();
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* checkpoint = system.CreateSegment(kBytes);
  StdSegment* working = system.CreateSegment(kBytes);
  working->SetSourceSegment(checkpoint);
  Region* checkpoint_region = system.CreateRegion(checkpoint);
  Region* working_region = system.CreateRegion(working);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr checkpoint_base = as->BindRegion(checkpoint_region);
  VirtAddr working_base = as->BindRegion(working_region);
  system.Activate(as);

  Shadow shadow;
  Rng rng(param.seed);
  constexpr int kOps = 4000;
  for (int op = 0; op < kOps; ++op) {
    double roll = rng.NextDouble();
    uint32_t offset = static_cast<uint32_t>(rng.Uniform(kBytes / 4)) * 4;
    if (roll < param.write_probability) {
      auto value = static_cast<uint32_t>(rng.Next64());
      cpu.Write(working_base + offset, value);
      shadow.WriteWorking(offset, value);
    } else if (roll < param.write_probability + param.reset_probability) {
      system.ResetDeferredCopy(&cpu, as, working_base, working_base + kBytes);
      shadow.Reset();
    } else if (roll < param.write_probability + param.reset_probability +
                          param.flush_probability) {
      // Flush: writebacks flip line sources to the destination; values are
      // unaffected. Exercises the written-back bookkeeping only.
      system.FlushSegment(&cpu, working);
    } else {
      // Checkpoint write: shows through undiverged working lines only.
      auto value = static_cast<uint32_t>(rng.Next64());
      cpu.Write(checkpoint_base + offset, value);
      shadow.WriteCheckpoint(offset, value);
    }

    // Spot-check a few random words every operation.
    for (int probe = 0; probe < 3; ++probe) {
      uint32_t at = static_cast<uint32_t>(rng.Uniform(kBytes / 4)) * 4;
      ASSERT_EQ(cpu.Read(working_base + at), shadow.ReadWorking(at))
          << "op " << op << " offset " << at;
    }
  }

  // Full final sweep of both views.
  for (uint32_t offset = 0; offset < kBytes; offset += 4) {
    ASSERT_EQ(cpu.Read(working_base + offset), shadow.ReadWorking(offset))
        << "working offset " << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeferredPropertyTest,
    ::testing::Values(DeferredCase{"write_heavy", 11, 0.80, 0.02, 0.05},
                      DeferredCase{"reset_heavy", 12, 0.50, 0.20, 0.05},
                      DeferredCase{"flush_heavy", 13, 0.50, 0.05, 0.30},
                      DeferredCase{"checkpoint_heavy", 14, 0.30, 0.05, 0.05},
                      DeferredCase{"balanced", 15, 0.55, 0.10, 0.15},
                      DeferredCase{"balanced_alt_seed", 16, 0.55, 0.10, 0.15}),
    [](const ::testing::TestParamInfo<DeferredCase>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace lvm
