// Tests of the Time Warp optimistic simulation engine (Section 2.4) with
// both state savers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/timewarp/copy_state_saver.h"
#include "src/timewarp/lvm_state_saver.h"
#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

std::vector<Event> MakeBootstrap(uint32_t jobs, uint32_t total_objects, uint64_t seed) {
  std::vector<Event> events;
  Rng rng(seed);
  for (uint32_t i = 0; i < jobs; ++i) {
    Event event;
    event.time = 1 + rng.Uniform(4);
    event.target_object = static_cast<uint32_t>(rng.Uniform(total_objects));
    event.payload = rng.Next64();
    events.push_back(event);
  }
  return events;
}

struct SaverCase {
  StateSaving saving;
  const char* name;
};

class TimeWarpTest : public ::testing::TestWithParam<SaverCase> {};

TEST_P(TimeWarpTest, SingleSchedulerNeverRollsBack) {
  LvmSystem system;
  SyntheticModel model(SyntheticModel::Params{});
  TimeWarpConfig config;
  config.num_schedulers = 1;
  config.objects_per_scheduler = 4;
  config.state_saving = GetParam().saving;
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : MakeBootstrap(4, sim.total_objects(), 7)) {
    sim.Bootstrap(event);
  }
  sim.Run(500);
  EXPECT_GT(sim.total_events_processed(), 50u);
  EXPECT_EQ(sim.total_rollbacks(), 0u);
}

TEST_P(TimeWarpTest, CrossSchedulerTrafficCausesRollbacks) {
  LvmSystem system;
  SyntheticModel::Params params;
  params.remote_probability = 0.5;
  params.min_delay = 1;
  params.max_delay = 32;
  SyntheticModel model(params);
  TimeWarpConfig config;
  config.num_schedulers = 4;
  config.objects_per_scheduler = 4;
  config.state_saving = GetParam().saving;
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : MakeBootstrap(12, sim.total_objects(), 11)) {
    sim.Bootstrap(event);
  }
  sim.Run(2000);
  EXPECT_GT(sim.total_events_processed(), 200u);
  // The round-robin loop runs schedulers out of lockstep; remote traffic
  // must produce stragglers.
  EXPECT_GT(sim.total_rollbacks(), 0u);
}

TEST_P(TimeWarpTest, OptimisticMatchesSequential_Synthetic) {
  SyntheticModel::Params params;
  params.remote_probability = 0.4;
  params.writes = 6;
  TimeWarpConfig config;
  config.num_schedulers = 3;
  config.objects_per_scheduler = 5;
  config.object_size = 64;
  config.state_saving = GetParam().saving;
  config.cult_interval = 64;
  constexpr VirtualTime kEnd = 1500;

  std::vector<Event> bootstrap = MakeBootstrap(9, 15, 23);

  SyntheticModel model(params);
  LvmSystem optimistic_system;
  TimeWarpSimulation optimistic(&optimistic_system, &model, config);
  for (const Event& event : bootstrap) {
    optimistic.Bootstrap(event);
  }
  optimistic.Run(kEnd);

  SyntheticModel reference_model(params);
  LvmSystem sequential_system;
  uint64_t expected =
      SequentialDigest(&sequential_system, &reference_model, config, bootstrap, kEnd);

  EXPECT_EQ(OptimisticDigest(&optimistic, kEnd), expected);
  EXPECT_GT(optimistic.total_rollbacks(), 0u);  // The test must exercise rollback.
}

TEST_P(TimeWarpTest, OptimisticMatchesSequential_Phold) {
  PholdModel::Params params;
  params.mean_delay = 6.0;
  TimeWarpConfig config;
  config.num_schedulers = 4;
  config.objects_per_scheduler = 4;
  config.object_size = 96;
  config.state_saving = GetParam().saving;
  config.cult_interval = 64;
  constexpr VirtualTime kEnd = 800;

  std::vector<Event> bootstrap = MakeBootstrap(16, 16, 99);

  PholdModel model(params);
  LvmSystem optimistic_system;
  TimeWarpSimulation optimistic(&optimistic_system, &model, config);
  for (const Event& event : bootstrap) {
    optimistic.Bootstrap(event);
  }
  optimistic.Run(kEnd);

  PholdModel reference_model(params);
  LvmSystem sequential_system;
  uint64_t expected =
      SequentialDigest(&sequential_system, &reference_model, config, bootstrap, kEnd);

  EXPECT_EQ(OptimisticDigest(&optimistic, kEnd), expected);
  EXPECT_GT(optimistic.total_rollbacks(), 0u);
}

TEST_P(TimeWarpTest, CultKeepsHistoryBounded) {
  LvmSystem system;
  PholdModel model(PholdModel::Params{});
  TimeWarpConfig config;
  config.num_schedulers = 2;
  config.objects_per_scheduler = 4;
  config.state_saving = GetParam().saving;
  config.cult_interval = 16;  // Aggressive fossil collection.
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : MakeBootstrap(8, sim.total_objects(), 5)) {
    sim.Bootstrap(event);
  }
  sim.Run(5000);
  EXPECT_GT(sim.total_events_processed(), 500u);
  if (GetParam().saving == StateSaving::kLvm) {
    // CULT truncated the logs: they must be far smaller than one record per
    // processed write.
    for (uint32_t i = 0; i < sim.num_schedulers(); ++i) {
      auto* saver = static_cast<LvmStateSaver*>(sim.scheduler(i).saver());
      EXPECT_LT(saver->log()->append_offset, 64u * kPageSize);
    }
  }
}

TEST_P(TimeWarpTest, LazyCultDefersBottleneckScheduler) {
  LvmSystem system;
  PholdModel model(PholdModel::Params{});
  TimeWarpConfig config;
  config.num_schedulers = 2;
  config.objects_per_scheduler = 4;
  config.state_saving = GetParam().saving;
  config.cult_interval = 16;
  config.cult_laziness = 1u << 30;  // Everyone always looks like the bottleneck.
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : MakeBootstrap(8, sim.total_objects(), 5)) {
    sim.Bootstrap(event);
  }
  sim.Run(1000);
  EXPECT_GT(sim.total_events_processed(), 100u);
  if (GetParam().saving == StateSaving::kLvm) {
    for (uint32_t i = 0; i < sim.num_schedulers(); ++i) {
      auto* saver = static_cast<LvmStateSaver*>(sim.scheduler(i).saver());
      EXPECT_EQ(saver->checkpoint_time(), 0u);  // CULT never ran.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Savers, TimeWarpTest,
                         ::testing::Values(SaverCase{StateSaving::kCopy, "copy"},
                                           SaverCase{StateSaving::kLvm, "lvm"}),
                         [](const ::testing::TestParamInfo<SaverCase>& param_info) {
                           return std::string(param_info.param.name);
                         });

TEST(TimeWarpMicroTest, StragglerRollbackRestoresExactState) {
  // Hand-built scenario: scheduler 1 runs ahead, then a straggler from
  // scheduler 0 forces it back; the re-executed history must include the
  // straggler's effect.
  struct RecordingModel : SimulationModel {
    void Execute(Cpu* cpu, Scheduler* scheduler, const Event& event) override {
      VirtAddr object = scheduler->ObjectAddr(event.target_object % scheduler->num_objects());
      uint32_t sum = cpu->Read(object);
      cpu->Write(object, sum + static_cast<uint32_t>(event.payload));
      cpu->Compute(100);
      if (event.payload == 42) {
        // The event at time 50 on object 0 sends a straggler-ish message to
        // object 1 (scheduler 1) at time 60.
        Event cross;
        cross.time = 60;
        cross.target_object = 1;
        cross.payload = 7;
        scheduler->Send(cross);
      }
    }
  };

  for (StateSaving saving : {StateSaving::kCopy, StateSaving::kLvm}) {
    LvmSystem system;
    RecordingModel model;
    TimeWarpConfig config;
    config.num_schedulers = 2;
    config.objects_per_scheduler = 1;
    config.state_saving = saving;
    TimeWarpSimulation sim(&system, &model, config);

    // Scheduler 1 gets events at 10, 100, 200 (it will run far ahead);
    // scheduler 0 gets one at 50 which sends to object 1 at 60.
    for (VirtualTime t : {10u, 100u, 200u}) {
      Event e;
      e.time = t;
      e.target_object = 1;
      e.payload = t;
      sim.Bootstrap(e);
    }
    Event trigger;
    trigger.time = 50;
    trigger.target_object = 0;
    trigger.payload = 42;
    sim.Bootstrap(trigger);

    sim.Run(1000);
    // Object 1 accumulated 10 + 100 + 200 + 7; object 0 accumulated 42.
    uint64_t d = OptimisticDigest(&sim, 1000);
    // Compare against the sequential reference.
    LvmSystem seq_system;
    RecordingModel seq_model;
    std::vector<Event> bootstrap;
    for (VirtualTime t : {10u, 100u, 200u}) {
      Event e;
      e.time = t;
      e.target_object = 1;
      e.payload = t;
      bootstrap.push_back(e);
    }
    bootstrap.push_back(trigger);
    uint64_t expected = SequentialDigest(&seq_system, &seq_model, config, bootstrap, 1000);
    EXPECT_EQ(d, expected) << "saving mode " << static_cast<int>(saving);
  }
}

}  // namespace
}  // namespace lvm
