// Tests of conservative execution and the queueing-network model.
#include <gtest/gtest.h>

#include <vector>

#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

std::vector<Event> QueueBootstrap(uint32_t jobs, uint32_t stations, uint64_t seed) {
  std::vector<Event> events;
  Rng rng(seed);
  for (uint32_t i = 0; i < jobs; ++i) {
    events.push_back(QueueingNetworkModel::JobArrival(
        1 + rng.Uniform(4), static_cast<uint32_t>(rng.Uniform(stations)), rng.Next64()));
  }
  return events;
}

TEST(QueueingNetworkTest, OptimisticMatchesSequential) {
  QueueingNetworkModel::Params params;
  QueueingNetworkModel model(params);
  TimeWarpConfig config;
  config.num_schedulers = 4;
  config.objects_per_scheduler = 3;
  config.object_size = 64;
  config.state_saving = StateSaving::kLvm;
  config.cult_interval = 32;
  constexpr VirtualTime kEnd = 1200;
  std::vector<Event> bootstrap = QueueBootstrap(20, 12, 404);

  LvmSystem optimistic_system;
  TimeWarpSimulation optimistic(&optimistic_system, &model, config);
  for (const Event& event : bootstrap) {
    optimistic.Bootstrap(event);
  }
  optimistic.Run(kEnd);
  EXPECT_GT(optimistic.total_rollbacks(), 0u);

  LvmSystem sequential_system;
  uint64_t expected = SequentialDigest(&sequential_system, &model, config, bootstrap, kEnd);
  EXPECT_EQ(OptimisticDigest(&optimistic, kEnd), expected);
}

TEST(QueueingNetworkTest, JobsConserved) {
  // In a closed network, arrivals seen - departures completed == jobs in
  // queue or in service, at any quiescent point.
  QueueingNetworkModel::Params params;
  QueueingNetworkModel model(params);
  TimeWarpConfig config;
  config.num_schedulers = 1;
  config.objects_per_scheduler = 8;
  config.object_size = 64;
  config.state_saving = StateSaving::kCopy;
  LvmSystem system;
  TimeWarpSimulation sim(&system, &model, config);
  constexpr uint32_t kJobs = 10;
  for (const Event& event : QueueBootstrap(kJobs, 8, 7)) {
    sim.Bootstrap(event);
  }
  sim.Run(3000);
  Scheduler& scheduler = sim.scheduler(0);
  Cpu& cpu = *scheduler.cpu();
  system.Activate(system.active_address_space(0), 0);
  uint64_t arrivals = 0;
  uint64_t served = 0;
  uint64_t queued = 0;
  uint64_t busy = 0;
  for (uint32_t i = 0; i < 8; ++i) {
    VirtAddr station = scheduler.ObjectAddr(i);
    queued += cpu.Read(station + 0);
    busy += cpu.Read(station + 4);
    served += cpu.Read(station + 8);
    arrivals += cpu.Read(station + 12);
  }
  EXPECT_GT(served, 0u);
  // Every arrival either departed, is in service, or is queued.
  EXPECT_EQ(arrivals, served + busy + queued);
  // Jobs never leave the closed network: those not at stations are in
  // flight as pending events.
  EXPECT_LE(busy + queued, kJobs);
}

TEST(ConservativeTest, NeverRollsBackAndMatchesSequential) {
  QueueingNetworkModel::Params params;
  QueueingNetworkModel model(params);
  TimeWarpConfig config;
  config.num_schedulers = 4;
  config.objects_per_scheduler = 3;
  config.object_size = 64;
  config.state_saving = StateSaving::kCopy;
  config.conservative = true;
  config.lookahead = model.MinIncrement();
  constexpr VirtualTime kEnd = 1000;
  std::vector<Event> bootstrap = QueueBootstrap(16, 12, 505);

  LvmSystem system;
  TimeWarpSimulation conservative(&system, &model, config);
  for (const Event& event : bootstrap) {
    conservative.Bootstrap(event);
  }
  conservative.Run(kEnd);
  EXPECT_EQ(conservative.total_rollbacks(), 0u);
  EXPECT_GT(conservative.total_events_processed(), 100u);

  LvmSystem sequential_system;
  TimeWarpConfig reference = config;
  reference.conservative = false;
  uint64_t expected =
      SequentialDigest(&sequential_system, &model, reference, bootstrap, kEnd);
  EXPECT_EQ(OptimisticDigest(&conservative, kEnd), expected);
}

TEST(ConservativeTest, OptimismBeatsConservatismOnParallelHardware) {
  // The Section 2.4 argument: a process running ahead speculates instead
  // of idling, so the optimistic run finishes in less machine time than
  // the lookahead-limited conservative run of the same workload.
  QueueingNetworkModel::Params params;
  params.compute_cycles = 1500;  // Meaty events make idling expensive.
  // Mostly-local routing: the jobs form nearly independent per-scheduler
  // chains, which conservative lookahead cannot exploit but speculation
  // can.
  params.locality = 0.9;
  params.locality_domain = 4;
  QueueingNetworkModel model(params);
  TimeWarpConfig config;
  config.num_schedulers = 4;
  config.objects_per_scheduler = 4;
  config.object_size = 64;
  config.state_saving = StateSaving::kLvm;
  config.cult_interval = 64;
  constexpr VirtualTime kEnd = 1500;
  std::vector<Event> bootstrap = QueueBootstrap(8, 16, 606);

  auto run = [&](bool conservative) {
    LvmConfig machine_config;
    machine_config.num_cpus = 4;
    LvmSystem system(machine_config);
    TimeWarpConfig run_config = config;
    run_config.conservative = conservative;
    run_config.lookahead = model.MinIncrement();
    TimeWarpSimulation sim(&system, &model, run_config);
    for (const Event& event : bootstrap) {
      sim.Bootstrap(event);
    }
    sim.Run(kEnd);
    return sim.ElapsedCycles();
  };

  Cycles conservative_cycles = run(true);
  Cycles optimistic_cycles = run(false);
  EXPECT_LT(optimistic_cycles, conservative_cycles);
}

}  // namespace
}  // namespace lvm
