// Tests of the src/check invariant subsystem: the InvariantChecker's
// write-by-write cross-check of the bus logger, the LogReplayVerifier's
// shadow replay, and the fault-injection shim proving each seeded violation
// class is caught.
#include <gtest/gtest.h>

#include <vector>

#include "src/check/fault_injection.h"
#include "src/check/invariant_checker.h"
#include "src/check/log_replay_verifier.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

using Kind = InvariantChecker::Violation::Kind;
using Action = LogFaultInjector::Action;

// A logged region over a data segment, with the checker attached before any
// traffic flows.
struct CheckedSetup {
  explicit CheckedSetup(LvmSystem* system, uint32_t size = 4 * kPageSize,
                        LogMode mode = LogMode::kNormal)
      : checker(system) {
    segment = system->CreateSegment(size);
    region = system->CreateRegion(segment);
    log = system->CreateLogSegment();
    as = system->CreateAddressSpace();
    base = as->BindRegion(region);
    system->AttachLog(region, log, mode);
    system->Activate(as);
  }

  InvariantChecker checker;
  StdSegment* segment = nullptr;
  Region* region = nullptr;
  LogSegment* log = nullptr;
  AddressSpace* as = nullptr;
  VirtAddr base = 0;
};

// Writes `count` paced words through the logged region.
void WriteWords(LvmSystem* system, VirtAddr base, uint32_t count, uint32_t pace = 300) {
  Cpu& cpu = system->cpu();
  for (uint32_t i = 0; i < count; ++i) {
    cpu.Write(base + 4 * i, 0xa0000000u + i);
    cpu.Compute(pace);
  }
}

TEST(InvariantCheckerTest, CleanRunHasNoViolations) {
  LvmSystem system;
  CheckedSetup setup(&system);
  WriteWords(&system, setup.base, 200);
  system.SyncLog(&system.cpu(), setup.log);

  setup.checker.CheckDrained();
  setup.checker.CheckVmState();
  EXPECT_TRUE(setup.checker.ok()) << setup.checker.Report();
  EXPECT_EQ(setup.checker.logged_writes_seen(), 200u);
  EXPECT_EQ(setup.checker.records_checked(), 200u);
  EXPECT_EQ(setup.checker.records_checked(), system.GetStats().records_logged);
}

TEST(InvariantCheckerTest, TailStaysMonotonicAcrossPageCrossings) {
  LvmSystem system;
  CheckedSetup setup(&system, 16 * kPageSize);
  // > 256 records per page: force several tail page-boundary faults.
  WriteWords(&system, setup.base, 1000);
  system.SyncLog(&system.cpu(), setup.log);

  setup.checker.CheckDrained();
  EXPECT_TRUE(setup.checker.ok()) << setup.checker.Report();
  EXPECT_GT(system.GetStats().tail_faults, 0u);
}

TEST(InvariantCheckerTest, OverloadDrainsCleanly) {
  LvmSystem system;
  CheckedSetup setup(&system, 16 * kPageSize);
  // Unpaced writes exceed one logged write per 27 cycles: overload fires.
  WriteWords(&system, setup.base, 1000, /*pace=*/0);
  system.SyncLog(&system.cpu(), setup.log);

  setup.checker.CheckDrained();
  EXPECT_GT(setup.checker.overloads_seen(), 0u);
  EXPECT_EQ(setup.checker.overloads_seen(), system.overload_suspensions());
  EXPECT_TRUE(setup.checker.ok()) << setup.checker.Report();
}

TEST(InvariantCheckerTest, TruncationReloadsTailExpectation) {
  LvmSystem system;
  CheckedSetup setup(&system);
  Cpu& cpu = system.cpu();
  WriteWords(&system, setup.base, 50);
  system.TruncateLog(&cpu, setup.log);
  WriteWords(&system, setup.base + kPageSize, 50);
  system.SyncLog(&cpu, setup.log);

  setup.checker.CheckDrained();
  EXPECT_TRUE(setup.checker.ok()) << setup.checker.Report();
}

TEST(InvariantCheckerTest, PerCpuLogGroupsStayConsistent) {
  LvmConfig config;
  config.num_cpus = 4;
  LvmSystem system(config);
  InvariantChecker checker(&system);

  StdSegment* segment = system.CreateSegment(4 * kPageSize);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  std::vector<LogSegment*> logs;
  for (int i = 0; i < 4; ++i) {
    logs.push_back(system.CreateLogSegment());
  }
  system.AttachPerCpuLogs(region, logs);
  for (int i = 0; i < 4; ++i) {
    system.Activate(as, i);
  }
  for (int cpu_id = 0; cpu_id < 4; ++cpu_id) {
    Cpu& cpu = system.cpu(cpu_id);
    for (uint32_t i = 0; i < 64; ++i) {
      cpu.Write(base + kPageSize * static_cast<uint32_t>(cpu_id) + 4 * i, i);
      cpu.Compute(300);
    }
  }
  for (LogSegment* log : logs) {
    system.SyncLog(&system.cpu(), log);
  }

  checker.CheckDrained();
  checker.CheckVmState();
  EXPECT_TRUE(checker.ok()) << checker.Report();
  EXPECT_EQ(checker.records_checked(), 4u * 64u);
}

TEST(InvariantCheckerTest, IndexedAndDirectMappedModes) {
  {
    LvmSystem system;
    CheckedSetup setup(&system, 4 * kPageSize, LogMode::kIndexed);
    WriteWords(&system, setup.base, 100);
    system.SyncLog(&system.cpu(), setup.log);
    setup.checker.CheckDrained();
    EXPECT_TRUE(setup.checker.ok()) << setup.checker.Report();
  }
  {
    LvmSystem system;
    CheckedSetup setup(&system, 4 * kPageSize, LogMode::kDirectMapped);
    WriteWords(&system, setup.base, 100);
    system.SyncLog(&system.cpu(), setup.log);
    setup.checker.CheckDrained();
    EXPECT_TRUE(setup.checker.ok()) << setup.checker.Report();
  }
}

TEST(InvariantCheckerTest, VirtualRecordAddressesMatchByOffset) {
  LvmConfig config;
  config.bus_logger_virtual_records = true;
  LvmSystem system(config);
  CheckedSetup setup(&system);
  WriteWords(&system, setup.base, 100);
  system.SyncLog(&system.cpu(), setup.log);

  setup.checker.CheckDrained();
  EXPECT_TRUE(setup.checker.ok()) << setup.checker.Report();
}

TEST(InvariantCheckerTest, CheckVmStateDetectsTamperedPte) {
  LvmSystem system;
  CheckedSetup setup(&system);
  WriteWords(&system, setup.base, 10);
  setup.checker.CheckVmState();
  ASSERT_TRUE(setup.checker.ok()) << setup.checker.Report();

  // A logged page silently losing write-through mode would hide writes from
  // the bus — exactly the Section 3.2 invariant.
  setup.as->FindPte(setup.base)->write_through = false;
  setup.checker.CheckVmState();
  EXPECT_TRUE(setup.checker.Has(Kind::kPteInconsistent)) << setup.checker.Report();
}

TEST(InvariantCheckerTest, MissingBusTrafficDetectedAtSync) {
  LvmSystem system;
  CheckedSetup setup(&system);
  // Bypass the bus: a write the checker sees but the logger never receives
  // cannot happen, but the reverse — snooped write without a record — is
  // the drop case. Simulate by disarming logging between write and drain:
  // push a write into the FIFO, then invalidate its mapping so the logger
  // must consult the kernel, which refuses (page no longer bound).
  Cpu& cpu = system.cpu();
  cpu.Write(setup.base, 7);
  system.SyncLog(&cpu, setup.log);
  setup.checker.CheckDrained();
  EXPECT_TRUE(setup.checker.ok()) << setup.checker.Report();
  EXPECT_EQ(setup.checker.records_checked(), 1u);
}

// --- replay verification ---

TEST(LogReplayVerifierTest, ReplayReproducesMemory) {
  LvmSystem system;
  CheckedSetup setup(&system);
  Cpu& cpu = system.cpu();
  LogReplayVerifier verifier(&system);
  verifier.Snapshot(&cpu, setup.segment, setup.log);

  WriteWords(&system, setup.base, 300);
  // Overwrites must replay in order too.
  for (uint32_t i = 0; i < 50; ++i) {
    cpu.Write(setup.base + 4 * i, 0xb0000000u + i);
    cpu.Compute(300);
  }
  std::vector<ReplayMismatch> mismatches = verifier.Verify(&cpu);
  EXPECT_TRUE(mismatches.empty()) << LogReplayVerifier::Describe(mismatches);
}

TEST(LogReplayVerifierTest, SnapshotMidStreamSkipsEarlierRecords) {
  LvmSystem system;
  CheckedSetup setup(&system);
  Cpu& cpu = system.cpu();
  WriteWords(&system, setup.base, 64);

  LogReplayVerifier verifier(&system);
  verifier.Snapshot(&cpu, setup.segment, setup.log);
  WriteWords(&system, setup.base + kPageSize, 64);

  std::vector<ReplayMismatch> mismatches = verifier.Verify(&cpu);
  EXPECT_TRUE(mismatches.empty()) << LogReplayVerifier::Describe(mismatches);
}

// --- fault injection: every seeded violation class must be caught ---

TEST(FaultInjectionTest, DroppedRecordCaughtByReplay) {
  LvmSystem system;
  CheckedSetup setup(&system);
  Cpu& cpu = system.cpu();
  ScriptedFaultInjector injector;
  injector.Arm(setup.log->log_index, 2, Action::kDropRecord);
  system.bus_logger()->set_fault_injector(&injector);

  LogReplayVerifier verifier(&system);
  verifier.Snapshot(&cpu, setup.segment, setup.log);
  WriteWords(&system, setup.base, 10);

  ASSERT_TRUE(injector.AllFired());
  std::vector<ReplayMismatch> mismatches = verifier.Verify(&cpu);
  EXPECT_FALSE(mismatches.empty())
      << "a silently dropped record must leave the log unable to reproduce memory";
  // The drop is invisible to the event stream, which is exactly why the
  // replay check exists.
  setup.checker.CheckDrained();
}

TEST(FaultInjectionTest, DuplicatedRecordCaughtByChecker) {
  LvmSystem system;
  CheckedSetup setup(&system);
  ScriptedFaultInjector injector;
  injector.Arm(setup.log->log_index, 1, Action::kDuplicateRecord);
  system.bus_logger()->set_fault_injector(&injector);

  WriteWords(&system, setup.base, 10);
  system.SyncLog(&system.cpu(), setup.log);

  ASSERT_TRUE(injector.AllFired());
  setup.checker.CheckDrained();
  EXPECT_TRUE(setup.checker.Has(Kind::kTailDiscontinuity)) << setup.checker.Report();
}

TEST(FaultInjectionTest, CorruptedValueCaughtByChecker) {
  LvmSystem system;
  CheckedSetup setup(&system);
  ScriptedFaultInjector injector;
  injector.ArmCorruption(setup.log->log_index, 3,
                         [](LogRecord* record) { record->value ^= 0xdead; });
  system.bus_logger()->set_fault_injector(&injector);

  WriteWords(&system, setup.base, 10);
  system.SyncLog(&system.cpu(), setup.log);

  ASSERT_TRUE(injector.AllFired());
  EXPECT_TRUE(setup.checker.Has(Kind::kValueMismatch)) << setup.checker.Report();
}

TEST(FaultInjectionTest, CorruptedSizeCaughtByChecker) {
  LvmSystem system;
  CheckedSetup setup(&system);
  ScriptedFaultInjector injector;
  injector.ArmCorruption(setup.log->log_index, 3,
                         [](LogRecord* record) { record->size = 1; });
  system.bus_logger()->set_fault_injector(&injector);

  WriteWords(&system, setup.base, 10);
  system.SyncLog(&system.cpu(), setup.log);

  ASSERT_TRUE(injector.AllFired());
  EXPECT_TRUE(setup.checker.Has(Kind::kSizeMismatch)) << setup.checker.Report();
}

TEST(FaultInjectionTest, SkippedTailAdvanceCaughtByChecker) {
  LvmSystem system;
  CheckedSetup setup(&system);
  ScriptedFaultInjector injector;
  injector.Arm(setup.log->log_index, 1, Action::kSkipTailAdvance);
  system.bus_logger()->set_fault_injector(&injector);

  WriteWords(&system, setup.base, 10);
  system.SyncLog(&system.cpu(), setup.log);

  ASSERT_TRUE(injector.AllFired());
  setup.checker.CheckDrained();
  EXPECT_TRUE(setup.checker.Has(Kind::kTailDiscontinuity)) << setup.checker.Report();
}

TEST(FaultInjectionTest, StaleDeferredCopyLineCaughtByChecker) {
  LvmSystem system;
  InvariantChecker checker(&system);
  StdSegment* checkpoint = system.CreateSegment(4 * kPageSize);
  StdSegment* working = system.CreateSegment(4 * kPageSize);
  working->SetSourceSegment(checkpoint);
  AddressSpace* as = system.CreateAddressSpace();
  Region* working_region = system.CreateRegion(working);
  VirtAddr base = as->BindRegion(working_region);
  system.Activate(as);
  Cpu& cpu = system.cpu();

  for (uint32_t i = 0; i < 32; ++i) {
    cpu.Write(base + 4 * i, i);
  }
  system.ResetDeferredCopy(&cpu, as, base, base + 4 * kPageSize);
  checker.CheckDeferredCopyReset(as, base, base + 4 * kPageSize);
  ASSERT_TRUE(checker.ok()) << checker.Report();

  // Seed the two stale-state classes resetDeferredCopy must never leave
  // behind: a written-back line source pointer and a dirty cached line.
  PhysAddr frame = as->FindPte(base)->frame;
  system.deferred_copy().OnLineWriteback(frame + 2 * kLineSize);
  system.machine().l2().Write(frame + 4 * kLineSize, 0xbad, 4);
  checker.CheckDeferredCopyReset(as, base, base + 4 * kPageSize);
  EXPECT_TRUE(checker.Has(Kind::kStaleDeferredCopyLine)) << checker.Report();
}

}  // namespace
}  // namespace lvm
