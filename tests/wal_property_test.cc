// Property test for the durable WAL: random commit/abort/sync/checkpoint/
// crash schedules, cross-checked against an in-memory oracle.
//
// Each seeded run drives a DurableTransactionalRegion through a few hundred
// random transactions, mirroring every *committed* write into an oracle
// image (aborted ones deliberately not). Along the way it takes "crash
// snapshots" — byte copies of the two backing files, either between
// operations or from inside a WAL crash hook mid-flush (a torn group
// commit in flight). After the run, every snapshot is recovered like a
// fresh process would and must equal the oracle image of *some* commit
// boundary S, with last-durable <= S <= last-appended at snapshot time:
// recovery never invents state, never loses a durable commit, and always
// lands on a transaction boundary. Recovery is also re-run to prove
// replay's idempotence.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/hostlvm/durable_region.h"
#include "src/hostlvm/wal_arena.h"

namespace lvm {
namespace {

constexpr size_t kRegionPages = 2;
constexpr size_t kRegionBytes = kRegionPages * 4096;
constexpr int kOpsPerSeed = 250;

void CopyFileBytes(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  ASSERT_TRUE(in.good()) << from;
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
  ASSERT_TRUE(out.good()) << to;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  const std::string command = "rm -rf " + dir;
  EXPECT_EQ(std::system(command.c_str()), 0);
  return dir;
}

// One crash snapshot: the copied region directory plus the recovery bounds
// that held at the moment of the copy.
struct CrashSnapshot {
  std::string dir;
  uint64_t durable_seq = 0;   // Superblock's last durably advanced commit.
  uint64_t appended_seq = 0;  // Last sequence Append() handed out.
};

class WalScheduleRunner {
 public:
  explicit WalScheduleRunner(uint64_t seed)
      : rng_(seed), dir_(FreshDir("wal_prop_" + std::to_string(seed))), seed_(seed) {
    images_[0] = std::vector<uint8_t>(kRegionBytes, 0);
    oracle_ = images_[0];
  }

  void Run() {
    DurableRegionOptions options;
    options.pages = kRegionPages;
    options.wal.blocks = 64;
    options.wal.group_commit_window = 4;
    std::string error;
    region_ = DurableTransactionalRegion::Open(dir_, options, &error);
    ASSERT_NE(region_, nullptr) << error;
    region_->wal()->SetCrashHook([this](WalPersistPoint point, uint64_t seq) {
      if (!hook_armed_ || point != hook_point_) {
        return;
      }
      hook_armed_ = false;
      TakeSnapshot("midflush_" + std::to_string(seq) + "_" + ToString(point));
    });
    for (int op = 0; op < kOpsPerSeed; ++op) {
      const uint64_t dice = rng_.Uniform(100);
      if (dice < 70) {
        RunTransaction();
      } else if (dice < 80) {
        region_->Sync();
      } else if (dice < 86) {
        region_->Checkpoint();
      } else if (dice < 94) {
        TakeSnapshot("between_op" + std::to_string(op));
      } else {
        // Arm a one-shot mid-flush snapshot at a random persist point of
        // whatever flush happens next.
        hook_point_ = static_cast<WalPersistPoint>(rng_.Uniform(5));
        hook_armed_ = true;
      }
      // The live region always mirrors the oracle exactly.
      ASSERT_EQ(std::memcmp(region_->data(), oracle_.data(), kRegionBytes), 0)
          << "live region diverged from the oracle at op " << op;
    }
    region_->Sync();
    ValidateSnapshots();
  }

 private:
  void RunTransaction() {
    region_->Begin();
    const int writes = static_cast<int>(rng_.UniformRange(1, 8));
    std::vector<std::pair<uint64_t, uint32_t>> txn;
    for (int j = 0; j < writes; ++j) {
      const uint64_t offset = rng_.Uniform(kRegionBytes / 4) * 4;
      const uint32_t value = ++value_counter_;  // Never 0, never repeats.
      std::memcpy(region_->data() + offset, &value, sizeof(value));
      txn.emplace_back(offset, value);
    }
    if (rng_.Chance(0.1)) {
      region_->Abort();  // The oracle never sees aborted writes.
      return;
    }
    const uint64_t seq = region_->Commit();
    ASSERT_NE(seq, 0u);  // Values never repeat, so the diff is never empty.
    for (const auto& [offset, value] : txn) {
      std::memcpy(oracle_.data() + offset, &value, sizeof(value));
    }
    images_[seq] = oracle_;
  }

  void TakeSnapshot(const std::string& tag) {
    const std::string snap = FreshDir("wal_prop_snap_" + std::to_string(seed_) + "_" + tag);
    ASSERT_EQ(::mkdir(snap.c_str(), 0755), 0);
    CopyFileBytes(DurableTransactionalRegion::ImagePath(dir_),
                  DurableTransactionalRegion::ImagePath(snap));
    CopyFileBytes(DurableTransactionalRegion::WalPath(dir_),
                  DurableTransactionalRegion::WalPath(snap));
    CrashSnapshot snapshot;
    snapshot.dir = snap;
    snapshot.durable_seq = region_->wal()->superblock().commit_seq;
    snapshot.appended_seq = region_->wal()->next_seq() - 1;
    snapshots_.push_back(snapshot);
  }

  void ValidateSnapshots() {
    for (const CrashSnapshot& snapshot : snapshots_) {
      SCOPED_TRACE(snapshot.dir);
      const std::vector<uint8_t> recovered = Recover(snapshot.dir);
      // Recovery must land on the oracle image of some commit boundary in
      // [durable, appended]: no invented state, no lost durable commit.
      uint64_t matched = ~uint64_t{0};
      for (uint64_t s = snapshot.durable_seq; s <= snapshot.appended_seq; ++s) {
        auto it = images_.find(s);
        if (it == images_.end()) {
          continue;
        }
        if (std::memcmp(recovered.data(), it->second.data(), kRegionBytes) == 0) {
          matched = s;
          break;
        }
      }
      EXPECT_NE(matched, ~uint64_t{0})
          << "recovered state matches no commit boundary in [" << snapshot.durable_seq
          << ", " << snapshot.appended_seq << "]";
      // Idempotence: recovering the same snapshot again (the first recovery
      // already replayed and persisted its cursor repair) yields the same
      // bytes.
      const std::vector<uint8_t> again = Recover(snapshot.dir);
      EXPECT_EQ(std::memcmp(recovered.data(), again.data(), kRegionBytes), 0);
    }
    // The schedule should actually have exercised the machinery.
    EXPECT_GE(snapshots_.size(), 3u) << "schedule took too few crash snapshots";
  }

  static std::vector<uint8_t> Recover(const std::string& dir) {
    DurableRegionOptions options;
    options.pages = kRegionPages;
    std::string error;
    auto region = DurableTransactionalRegion::Open(dir, options, &error);
    EXPECT_NE(region, nullptr) << error;
    std::vector<uint8_t> bytes(kRegionBytes, 0);
    if (region != nullptr) {
      std::memcpy(bytes.data(), region->data(), kRegionBytes);
    }
    return bytes;
  }

  Rng rng_;
  std::string dir_;
  uint64_t seed_;
  std::unique_ptr<DurableTransactionalRegion> region_;
  std::vector<uint8_t> oracle_;
  // Oracle image at every commit boundary (0 = the initial zeros).
  std::map<uint64_t, std::vector<uint8_t>> images_;
  std::vector<CrashSnapshot> snapshots_;
  uint32_t value_counter_ = 0;
  bool hook_armed_ = false;
  WalPersistPoint hook_point_ = WalPersistPoint::kBeforeBlockWrite;
};

TEST(WalPropertyTest, RandomSchedulesRecoverToCommitBoundaries) {
  for (uint64_t seed : {1, 2, 3, 4}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    WalScheduleRunner runner(seed);
    runner.Run();
  }
}

}  // namespace
}  // namespace lvm
