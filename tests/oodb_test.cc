// Tests of the persistent object store and map on recoverable memory, run
// over both store implementations (RVM needs every word annotated; RLVM
// needs nothing).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/base/rng.h"
#include "src/oodb/object_store.h"
#include "src/oodb/persistent_map.h"
#include "src/oodb/persistent_queue.h"
#include "src/rvm/ram_disk.h"
#include "src/rvm/rlvm.h"
#include "src/rvm/rvm.h"

namespace lvm {
namespace {

template <typename StoreT>
class OodbTest : public ::testing::Test {
 protected:
  OodbTest() {
    as_ = system_.CreateAddressSpace();
    backing_ = std::make_unique<StoreT>(&system_, as_, &disk_, 256 * 1024);
    system_.Activate(as_);
    store_ = std::make_unique<ObjectStore>(backing_.get(), &system_.cpu());
  }

  LvmSystem system_;
  RamDisk disk_;
  AddressSpace* as_ = nullptr;
  std::unique_ptr<StoreT> backing_;
  std::unique_ptr<ObjectStore> store_;
};

using StoreTypes = ::testing::Types<Rvm, Rlvm>;
template <typename T>
struct Name;
template <>
struct Name<Rvm> {
  static constexpr const char* kName = "Rvm";
};
template <>
struct Name<Rlvm> {
  static constexpr const char* kName = "Rlvm";
};
class NameGen {
 public:
  template <typename T>
  static std::string GetName(int) {
    return Name<T>::kName;
  }
};
TYPED_TEST_SUITE(OodbTest, StoreTypes, NameGen);

TYPED_TEST(OodbTest, AllocateWriteReadCommit) {
  ObjectStore& db = *this->store_;
  db.Begin();
  ObjRef obj = db.Allocate(16, /*type_tag=*/42);
  db.WriteField(obj, 0, 100);
  db.WriteField(obj, 3, 400);
  db.Commit();
  EXPECT_EQ(db.TypeOf(obj), 42u);
  EXPECT_EQ(db.SizeOf(obj), 16u);
  EXPECT_EQ(db.ReadField(obj, 0), 100u);
  EXPECT_EQ(db.ReadField(obj, 3), 400u);
}

TYPED_TEST(OodbTest, AbortRollsBackAllocationAndContents) {
  ObjectStore& db = *this->store_;
  db.Begin();
  ObjRef keeper = db.Allocate(8, 1);
  db.WriteField(keeper, 0, 7);
  db.Commit();
  uint32_t break_before = db.heap_break();

  db.Begin();
  ObjRef doomed = db.Allocate(64, 2);
  db.WriteField(doomed, 0, 1);
  db.WriteField(keeper, 0, 999);
  db.Abort();

  // The heap break rolled back (the allocation never happened) and the
  // surviving object is untouched.
  EXPECT_EQ(db.heap_break(), break_before);
  EXPECT_EQ(db.ReadField(keeper, 0), 7u);
}

TYPED_TEST(OodbTest, FreeListReuse) {
  ObjectStore& db = *this->store_;
  db.Begin();
  ObjRef a = db.Allocate(32, 1);
  db.Commit();
  db.Begin();
  db.Free(a);
  db.Commit();
  EXPECT_EQ(db.live_free_blocks(), 1u);
  db.Begin();
  ObjRef b = db.Allocate(32, 2);
  db.Commit();
  EXPECT_EQ(b, a);  // First fit reuses the freed block.
  EXPECT_EQ(db.live_free_blocks(), 0u);
  EXPECT_EQ(db.TypeOf(b), 2u);
}

TYPED_TEST(OodbTest, AbortedFreeStaysAllocated) {
  ObjectStore& db = *this->store_;
  db.Begin();
  ObjRef a = db.Allocate(16, 5);
  db.WriteField(a, 0, 123);
  db.Commit();
  db.Begin();
  db.Free(a);
  db.Abort();
  EXPECT_EQ(db.live_free_blocks(), 0u);
  EXPECT_EQ(db.ReadField(a, 0), 123u);
}

TYPED_TEST(OodbTest, NamedRootsPersist) {
  ObjectStore& db = *this->store_;
  db.Begin();
  ObjRef obj = db.Allocate(8, 9);
  db.SetRoot("customers", obj);
  db.Commit();
  EXPECT_EQ(db.GetRoot("customers"), obj);
  EXPECT_EQ(db.GetRoot("orders"), kNullRef);
  // Re-opening the heap (a new ObjectStore over the same backing store)
  // sees the root.
  ObjectStore reopened(this->backing_.get(), &this->system_.cpu());
  EXPECT_EQ(reopened.GetRoot("customers"), obj);
}

TYPED_TEST(OodbTest, RootUpdateAborts) {
  ObjectStore& db = *this->store_;
  db.Begin();
  ObjRef first = db.Allocate(8, 1);
  db.SetRoot("r", first);
  db.Commit();
  db.Begin();
  ObjRef second = db.Allocate(8, 2);
  db.SetRoot("r", second);
  db.Abort();
  EXPECT_EQ(db.GetRoot("r"), first);
}

TYPED_TEST(OodbTest, PersistentMapBasics) {
  ObjectStore& db = *this->store_;
  PersistentMap map(&db, "index", 8);
  db.Begin();
  map.Put(1, 10);
  map.Put(2, 20);
  map.Put(1, 11);  // Update.
  db.Commit();
  EXPECT_EQ(map.size(), 2u);
  uint32_t value = 0;
  ASSERT_TRUE(map.Get(1, &value));
  EXPECT_EQ(value, 11u);
  ASSERT_TRUE(map.Get(2, &value));
  EXPECT_EQ(value, 20u);
  EXPECT_FALSE(map.Get(3, &value));

  db.Begin();
  EXPECT_TRUE(map.Remove(1));
  EXPECT_FALSE(map.Remove(1));
  db.Commit();
  EXPECT_EQ(map.size(), 1u);
  EXPECT_FALSE(map.Get(1, &value));
}

TYPED_TEST(OodbTest, PersistentMapAbortRollsBackStructure) {
  ObjectStore& db = *this->store_;
  PersistentMap map(&db, "index", 4);
  db.Begin();
  for (uint32_t k = 0; k < 10; ++k) {
    map.Put(k, 100 + k);
  }
  db.Commit();
  db.Begin();
  map.Remove(3);
  map.Put(99, 1);
  map.Put(4, 0xdead);
  db.Abort();
  EXPECT_EQ(map.size(), 10u);
  uint32_t value = 0;
  ASSERT_TRUE(map.Get(3, &value));
  EXPECT_EQ(value, 103u);
  ASSERT_TRUE(map.Get(4, &value));
  EXPECT_EQ(value, 104u);
  EXPECT_FALSE(map.Get(99, &value));
}

TYPED_TEST(OodbTest, PersistentMapRandomizedVsReference) {
  ObjectStore& db = *this->store_;
  PersistentMap map(&db, "index", 16);
  std::map<uint32_t, uint32_t> committed_reference;
  Rng rng(77);
  for (int tx = 0; tx < 40; ++tx) {
    std::map<uint32_t, uint32_t> speculative = committed_reference;
    db.Begin();
    for (int op = 0; op < 8; ++op) {
      uint32_t key = static_cast<uint32_t>(rng.Uniform(30));
      if (rng.Chance(0.7)) {
        auto value = static_cast<uint32_t>(rng.Next64());
        map.Put(key, value);
        speculative[key] = value;
      } else {
        bool removed = map.Remove(key);
        EXPECT_EQ(removed, speculative.erase(key) > 0);
      }
    }
    if (rng.Chance(0.3)) {
      db.Abort();
    } else {
      db.Commit();
      committed_reference = speculative;
    }
    // Verify against the reference.
    EXPECT_EQ(map.size(), committed_reference.size());
    for (const auto& [key, expected] : committed_reference) {
      uint32_t value = 0;
      ASSERT_TRUE(map.Get(key, &value)) << "key " << key;
      EXPECT_EQ(value, expected);
    }
  }
}

TYPED_TEST(OodbTest, PersistentQueueFifoAcrossChunks) {
  ObjectStore& db = *this->store_;
  PersistentQueue queue(&db, "work");
  db.Begin();
  // Span several chunks.
  for (uint32_t i = 0; i < 3 * PersistentQueue::kChunkSlots + 5; ++i) {
    queue.Enqueue(100 + i);
  }
  db.Commit();
  EXPECT_EQ(queue.size(), 3 * PersistentQueue::kChunkSlots + 5);
  db.Begin();
  uint32_t value = 0;
  for (uint32_t i = 0; i < 3 * PersistentQueue::kChunkSlots + 5; ++i) {
    ASSERT_TRUE(queue.Dequeue(&value));
    EXPECT_EQ(value, 100 + i);
  }
  EXPECT_FALSE(queue.Dequeue(&value));
  db.Commit();
  EXPECT_EQ(queue.size(), 0u);
}

TYPED_TEST(OodbTest, PersistentQueueAbortedDequeueRestores) {
  ObjectStore& db = *this->store_;
  PersistentQueue queue(&db, "work");
  db.Begin();
  queue.Enqueue(1);
  queue.Enqueue(2);
  db.Commit();
  db.Begin();
  uint32_t value = 0;
  ASSERT_TRUE(queue.Dequeue(&value));
  EXPECT_EQ(value, 1u);
  db.Abort();
  // The dequeue never happened.
  EXPECT_EQ(queue.size(), 2u);
  ASSERT_TRUE(queue.Peek(&value));
  EXPECT_EQ(value, 1u);
}

TYPED_TEST(OodbTest, PersistentQueueInterleavedOps) {
  ObjectStore& db = *this->store_;
  PersistentQueue queue(&db, "work");
  uint32_t next_in = 0;
  uint32_t next_out = 0;
  Rng rng(3);
  for (int round = 0; round < 200; ++round) {
    db.Begin();
    if (rng.Chance(0.6) || queue.size() == 0) {
      queue.Enqueue(next_in++);
    } else {
      uint32_t value = 0;
      ASSERT_TRUE(queue.Dequeue(&value));
      EXPECT_EQ(value, next_out++);
    }
    db.Commit();
  }
  EXPECT_EQ(queue.size(), next_in - next_out);
}

TYPED_TEST(OodbTest, SurvivesCrashRecovery) {
  ObjectStore& db = *this->store_;
  PersistentMap map(&db, "index", 8);
  db.Begin();
  map.Put(5, 55);
  map.Put(6, 66);
  db.Commit();
  db.Begin();
  map.Put(7, 77);  // In flight at the crash.

  // Crash: rebuild the committed bytes from the device and load them into
  // a fresh machine's recoverable store (the recovery path), then reopen
  // the object heap there.
  this->disk_.Crash();
  std::vector<uint8_t> recovered =
      this->disk_.RecoverImage(this->backing_->data_size());

  LvmSystem fresh_system;
  RamDisk fresh_disk;
  AddressSpace* fresh_as = fresh_system.CreateAddressSpace();
  TypeParam fresh_backing(&fresh_system, fresh_as, &fresh_disk, 256 * 1024);
  fresh_system.Activate(fresh_as);
  Cpu& cpu = fresh_system.cpu();
  fresh_backing.Begin(&cpu);
  fresh_backing.SetRange(&cpu, fresh_backing.data_base(),
                         static_cast<uint32_t>(recovered.size()));
  for (uint32_t offset = 0; offset + 4 <= recovered.size(); offset += 4) {
    uint32_t word = 0;
    std::memcpy(&word, &recovered[offset], 4);
    if (word != 0) {
      fresh_backing.Write(&cpu, fresh_backing.data_base() + offset, word);
    }
  }
  fresh_backing.Commit(&cpu);

  ObjectStore reopened(&fresh_backing, &cpu);
  PersistentMap recovered_map(&reopened, "index", 8);
  EXPECT_EQ(recovered_map.size(), 2u);
  uint32_t value = 0;
  ASSERT_TRUE(recovered_map.Get(5, &value));
  EXPECT_EQ(value, 55u);
  ASSERT_TRUE(recovered_map.Get(6, &value));
  EXPECT_EQ(value, 66u);
  EXPECT_FALSE(recovered_map.Get(7, &value));  // The torn transaction is gone.
}

}  // namespace
}  // namespace lvm
