// Property-based consistency-protocol tests: over randomized write
// patterns and release schedules, both protocols must converge the replica
// to the producer's state at every release point, and the transmission
// accounting must respect structural invariants (Munin never ships more
// distinct words than exist; LVM ships exactly one update per write).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/consistency/protocols.h"

namespace lvm {
namespace {

constexpr uint32_t kRegionBytes = 16 * kPageSize;

struct PatternCase {
  const char* name;
  uint64_t seed;
  // Pages the writes concentrate on (smaller = hotter).
  uint32_t page_span;
  // Probability a write repeats the previous offset (hot-spot-ness).
  double repeat_probability;
  uint32_t writes_per_interval;
  uint32_t intervals;
};

class ConsistencyPropertyTest : public ::testing::TestWithParam<PatternCase> {};

template <typename Protocol>
void RunPattern(const PatternCase& param) {
  LvmSystem system;
  Protocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  std::vector<uint8_t> producer_shadow(kRegionBytes, 0);
  Rng rng(param.seed);
  uint64_t total_writes = 0;

  for (uint32_t interval = 0; interval < param.intervals; ++interval) {
    uint32_t previous_offset = 0;
    for (uint32_t w = 0; w < param.writes_per_interval; ++w) {
      uint32_t offset;
      if (w > 0 && rng.Chance(param.repeat_probability)) {
        offset = previous_offset;
      } else {
        offset = static_cast<uint32_t>(rng.Uniform(param.page_span * kPageSize / 4)) * 4;
      }
      previous_offset = offset;
      auto value = static_cast<uint32_t>(rng.Next64());
      protocol.Write(&cpu, offset, value);
      std::memcpy(&producer_shadow[offset], &value, 4);
      ++total_writes;
    }
    protocol.Release(&cpu);
    // The replica equals the producer at every release point.
    for (int probe = 0; probe < 32; ++probe) {
      uint32_t at = static_cast<uint32_t>(rng.Uniform(kRegionBytes / 4)) * 4;
      uint32_t expected = 0;
      std::memcpy(&expected, &producer_shadow[at], 4);
      ASSERT_EQ(protocol.replica().ReadWord(at), expected)
          << "interval " << interval << " offset " << at;
    }
  }

  // Transmission invariants.
  uint64_t updates_shipped = protocol.channel().bytes_sent() / kUpdateWireBytes;
  if constexpr (std::is_same_v<Protocol, LogBasedProtocol>) {
    // LVM ships exactly one update per write.
    EXPECT_EQ(updates_shipped, total_writes);
  } else {
    // Munin ships at most one update per distinct word per interval, so
    // never more than the write count.
    EXPECT_LE(updates_shipped, total_writes);
    EXPECT_GT(updates_shipped, 0u);
  }
}

TEST_P(ConsistencyPropertyTest, LogBasedConverges) {
  RunPattern<LogBasedProtocol>(GetParam());
}

TEST_P(ConsistencyPropertyTest, MuninConverges) {
  RunPattern<MuninTwinProtocol>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, ConsistencyPropertyTest,
    ::testing::Values(PatternCase{"scattered", 1, 16, 0.0, 64, 8},
                      PatternCase{"hot_page", 2, 1, 0.3, 128, 8},
                      PatternCase{"hot_word", 3, 2, 0.9, 96, 8},
                      PatternCase{"bursty", 4, 8, 0.5, 256, 4},
                      PatternCase{"tiny_intervals", 5, 16, 0.0, 4, 24}),
    [](const ::testing::TestParamInfo<PatternCase>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace lvm
