// Safety properties: conservative execution's rollback-freedom over a seed
// sweep, and the host SIGSEGV dispatcher's behaviour on genuine crashes.
#include <gtest/gtest.h>

#include <vector>

#include "src/hostlvm/protected_region.h"
#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

class ConservativeSafetyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConservativeSafetyTest, NeverRollsBackForSafeLookahead) {
  QueueingNetworkModel::Params params;
  QueueingNetworkModel model(params);
  TimeWarpConfig config;
  config.num_schedulers = 4;
  config.objects_per_scheduler = 2;
  config.object_size = 64;
  config.state_saving = StateSaving::kCopy;
  config.conservative = true;
  config.lookahead = model.MinIncrement();

  LvmSystem system;
  TimeWarpSimulation sim(&system, &model, config);
  Rng rng(GetParam());
  for (int job = 0; job < 10; ++job) {
    sim.Bootstrap(QueueingNetworkModel::JobArrival(
        1 + rng.Uniform(5), static_cast<uint32_t>(rng.Uniform(8)), rng.Next64()));
  }
  sim.Run(600);
  EXPECT_EQ(sim.total_rollbacks(), 0u) << "seed " << GetParam();
  EXPECT_EQ(sim.total_anti_messages(), 0u);
  EXPECT_GT(sim.total_events_processed(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservativeSafetyTest,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull, 66ull));

TEST(SegvDispatcherSafetyTest, UnrelatedCrashStillCrashes) {
  // With a protected region registered, a genuine wild write must not be
  // swallowed by the dispatcher.
  EXPECT_DEATH(
      {
        ProtectedRegion region(2, false);
        region.Arm();
        region.data()[0] = 1;  // Legitimate fault, handled.
        volatile int* wild = nullptr;
        *wild = 42;  // Genuine crash: re-raised.
      },
      "");
}

TEST(SegvDispatcherSafetyTest, FaultAfterUnregisterCrashes) {
  // Writing into a region's (still armed) memory after the region object
  // is gone must crash rather than loop: the dispatcher no longer claims
  // the address... the memory is unmapped with the region, so the access
  // is a plain wild write.
  EXPECT_DEATH(
      {
        uint8_t* data = nullptr;
        {
          ProtectedRegion region(2, false);
          region.Arm();
          data = region.data();
        }
        data[0] = 1;  // Unmapped now.
      },
      "");
}

}  // namespace
}  // namespace lvm
