// Tests of the cycle-attribution profiler (DESIGN.md §14): conservation
// (per-CPU attributed cycles == clock advance) across serial, overload,
// deferred-copy, and parallel-engine runs; zero perturbation of simulated
// time; the strict-JSON lvm.profile.v1 export and flamegraph text; the
// drain-path attribution of the overload threshold; the live telemetry
// stream; and the flight-recorder ring wraparound drop accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/check/invariant_checker.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/profiler.h"
#include "src/obs/schema_ids.h"
#include "src/obs/telemetry.h"
#include "src/par/engine.h"

namespace lvm {
namespace {

using obs::CostCenter;

// Bench profiles disable wall sampling for determinism; tests do the same.
obs::ProfilerConfig QuietConfig() {
  obs::ProfilerConfig config;
  config.wall_sampling = false;
  return config;
}

// A paced logged-write workload: `count` writes through an attached log.
void RunLoggedWrites(LvmSystem* system, uint32_t count, uint32_t pace) {
  Cpu& cpu = system->cpu();
  StdSegment* segment = system->CreateSegment(16 * kPageSize);
  Region* region = system->CreateRegion(segment);
  LogSegment* log = system->CreateLogSegment(128);
  AddressSpace* as = system->CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system->AttachLog(region, log);
  system->Activate(as);
  system->TouchRegion(&cpu, region);
  for (uint32_t i = 0; i < count; ++i) {
    cpu.Write(base + 4 * (i % 4096), i);
    cpu.Compute(pace);
  }
  cpu.DrainWriteBuffer();
  system->SyncLog(&cpu, log);
}

TEST(ProfilerConservation, SerialLoggedRun) {
  LvmSystem system;
  obs::Profiler* profiler = system.EnableProfiler(QuietConfig());
  InvariantChecker checker(&system);
  RunLoggedWrites(&system, 2000, 300);

  checker.CheckProfilerConservation();
  EXPECT_TRUE(checker.ok()) << checker.Report();
  EXPECT_EQ(profiler->LaneAttributed(0),
            system.cpu().now() - profiler->lane_baseline(0));
  EXPECT_GT(profiler->CenterCycles(0, CostCenter::kCompute), 0u);
  EXPECT_GT(profiler->CenterCycles(0, CostCenter::kMemWrite), 0u);
}

TEST(ProfilerConservation, OverloadRunAttributesDrainPath) {
  // Figure 11's c=0 point: back-to-back logged writes overload the FIFO.
  LvmSystem system;
  obs::Profiler* profiler = system.EnableProfiler(QuietConfig());
  InvariantChecker checker(&system);
  Cpu& cpu = system.cpu();
  uint32_t span = 64 * kPageSize;
  StdSegment* segment = system.CreateSegment(span);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(128);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  system.TouchRegion(&cpu, region);
  cpu.DrainWriteBuffer();
  uint32_t address = 0;
  for (uint32_t i = 0; i < 5000; ++i) {
    cpu.Write(base + address, i);
    address = (address + 4) % span;
  }
  cpu.DrainWriteBuffer();
  ASSERT_GT(system.overload_suspensions(), 0u);

  checker.CheckProfilerConservation();
  EXPECT_TRUE(checker.ok()) << checker.Report();

  // The attribution the paper's overload threshold demands on sight: the
  // CPU's time goes to parking, the logger's to the overload drain.
  Cycles park = profiler->CenterCycles(0, CostCenter::kOverloadPark);
  EXPECT_GT(park, profiler->CenterCycles(0, CostCenter::kCompute));
  EXPECT_GT(park, profiler->CenterCycles(0, CostCenter::kMemWrite));
  EXPECT_GT(park, profiler->CenterCycles(0, CostCenter::kStall));
  int logger = profiler->logger_lane();
  EXPECT_GT(profiler->CenterCycles(logger, CostCenter::kLogDrain),
            profiler->CenterCycles(logger, CostCenter::kLogEmit));
}

TEST(ProfilerConservation, DeferredCopyRun) {
  LvmSystem system;
  obs::Profiler* profiler = system.EnableProfiler(QuietConfig());
  InvariantChecker checker(&system);
  Cpu& cpu = system.cpu();
  constexpr uint32_t kSize = 8 * kPageSize;
  StdSegment* checkpoint = system.CreateSegment(kSize);
  StdSegment* working = system.CreateSegment(kSize);
  working->SetSourceSegment(checkpoint);
  AddressSpace* as = system.CreateAddressSpace();
  Region* working_region = system.CreateRegion(working);
  system.CreateRegion(checkpoint);
  VirtAddr working_base = as->BindRegion(working_region);
  system.Activate(as);
  for (uint32_t i = 0; i < kSize / 4; i += 64) {
    cpu.Write(working_base + 4 * i, i);
  }
  system.ResetDeferredCopy(&cpu, as, working_base, working_base + kSize);

  checker.CheckProfilerConservation();
  EXPECT_TRUE(checker.ok()) << checker.Report();
  EXPECT_GT(profiler->CenterCycles(0, CostCenter::kDeferredCopy), 0u);
}

TEST(ProfilerConservation, ParallelEngineWorkers) {
  constexpr int kWorkers = 4;
  LvmConfig config;
  config.num_cpus = kWorkers;
  LvmSystem system(config);
  system.EnableProfiler(QuietConfig());
  AddressSpace* as = system.CreateAddressSpace();
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  std::vector<VirtAddr> bases;
  for (int i = 0; i < kWorkers; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(4 * kPageSize));
    bases.push_back(as->BindRegion(region));
    LogSegment* log = system.CreateLogSegment(8);
    system.AttachLog(region, log);
    regions.push_back(region);
    logs.push_back(log);
  }
  for (int i = 0; i < kWorkers; ++i) {
    system.Activate(as, i);
  }
  par::ParallelEngine engine(&system, par::EngineConfig{});
  for (int i = 0; i < kWorkers; ++i) {
    system.TouchRegion(&system.cpu(i), regions[i]);
    VirtAddr base = bases[i];
    engine.AddWorker(logs[i], [base](Cpu& cpu, uint64_t step) {
      cpu.Write(base + 4 * (step % 4096), static_cast<uint32_t>(step));
      cpu.Compute(32);
      return step + 1 < 2000;
    });
  }
  engine.Run();

  InvariantChecker checker(&system);
  checker.CheckProfilerConservation();
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

TEST(ProfilerPerturbation, EnabledRunMatchesDisabledCycleForCycle) {
  LvmSystem plain;
  RunLoggedWrites(&plain, 1500, 50);

  LvmSystem profiled;
  profiled.EnableProfiler(QuietConfig());
  RunLoggedWrites(&profiled, 1500, 50);

  // Charges never advance a clock: identical workload, identical timeline.
  EXPECT_EQ(plain.cpu().now(), profiled.cpu().now());
  EXPECT_EQ(plain.GetStats().records_logged, profiled.GetStats().records_logged);
  EXPECT_EQ(plain.profiler(), nullptr);
}

TEST(ProfilerExport, StrictJsonWithConservedLanes) {
  LvmSystem system;
  system.EnableProfiler(QuietConfig());
  RunLoggedWrites(&system, 500, 100);

  const std::string json = system.ProfileJson();
  ASSERT_TRUE(obs::ValidateJson(json)) << json;
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(json, &root, &error)) << error;
  EXPECT_EQ(root.GetString("schema"), obs::kProfileSchema);
  const obs::JsonValue* lanes = root.Find("lanes");
  ASSERT_NE(lanes, nullptr);
  ASSERT_EQ(lanes->Items().size(), 2u);  // cpu0 + logger
  const obs::JsonValue& cpu0 = lanes->Items()[0];
  EXPECT_EQ(cpu0.GetString("kind"), "cpu");
  EXPECT_TRUE(cpu0.GetBool("conserved"));
  EXPECT_EQ(cpu0.GetUint64("attributed"),
            cpu0.GetUint64("clock") - cpu0.GetUint64("baseline"));
  EXPECT_FALSE(cpu0.Find("nodes")->Items().empty());
  EXPECT_EQ(lanes->Items()[1].GetString("kind"), "logger");
}

TEST(ProfilerExport, ScopedHierarchyAndFlameText) {
  obs::Profiler profiler(1, QuietConfig());
  profiler.PushScope(0, CostCenter::kVmFault);
  profiler.Charge(0, CostCenter::kStall, 7);
  // Generic kernel cycles land in the innermost open scope, not a child.
  profiler.Charge(0, CostCenter::kKernel, 3);
  profiler.PopScope(0);
  profiler.Charge(0, CostCenter::kCompute, 5);

  const std::string json = profiler.ExportJson({15, 0});
  ASSERT_TRUE(obs::ValidateJson(json)) << json;
  EXPECT_NE(json.find("vm/page_fault;stall"), std::string::npos) << json;
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(json, &root, &error)) << error;
  EXPECT_TRUE(root.Find("lanes")->Items()[0].GetBool("conserved"));
  EXPECT_EQ(profiler.CenterCycles(0, CostCenter::kVmFault), 3u);

  const std::string flame = profiler.FlameText();
  EXPECT_NE(flame.find("cpu0;vm/page_fault;stall 7"), std::string::npos) << flame;
}

TEST(ProfilerExport, PoolExhaustionChargesParentAndStaysConserved) {
  obs::ProfilerConfig config = QuietConfig();
  config.nodes_per_lane = 2;  // Root plus one child.
  obs::Profiler profiler(1, config);
  profiler.Charge(0, CostCenter::kCompute, 5);
  profiler.Charge(0, CostCenter::kMemRead, 3);   // Pool full: charges root.
  profiler.Charge(0, CostCenter::kMemWrite, 0);  // Zero charges are dropped.

  EXPECT_GT(profiler.dropped_charges(), 0u);
  EXPECT_EQ(profiler.LaneAttributed(0), 8u);  // Nothing lost, just coarser.
}

TEST(TelemetryStream, EmitsValidNdjsonLines) {
  LvmSystem system;
  system.EnableProfiler(QuietConfig());
  const std::string path = ::testing::TempDir() + "/telemetry_test.ndjson";
  obs::TelemetryStream stream(&system.metrics(), system.profiler());
  obs::TelemetryConfig config;
  config.interval_ms = 5;
  ASSERT_TRUE(stream.Start(path, config));
  RunLoggedWrites(&system, 1000, 100);
  stream.Stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  uint64_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    ASSERT_TRUE(obs::ValidateJson(line)) << line;
    obs::JsonValue root;
    std::string error;
    ASSERT_TRUE(obs::ParseJson(line, &root, &error)) << error;
    EXPECT_EQ(root.GetString("schema"), obs::kTelemetrySchema);
    EXPECT_NE(root.Find("profile"), nullptr);
    ++lines;
  }
  EXPECT_GE(lines, 1u);  // Stop() always emits a final sample.
  EXPECT_EQ(stream.lines_emitted(), lines);
  std::remove(path.c_str());
}

// Satellite: flight-recorder ring wraparound under concurrent per-CPU
// writers at capacity — drop counters must be exact, not approximate.
TEST(FlightRingWraparound, ExactDropAccountingUnderConcurrency) {
  constexpr int kCpus = 4;
  constexpr size_t kCapacity = 64;
  constexpr uint64_t kEvents = 200;
  obs::FlightConfig config;
  config.ring_capacity = kCapacity;
  config.sync_interval = 0;  // No interleaved sync events: counts are exact.
  obs::FlightRecorder recorder(kCpus, config);

  std::vector<std::thread> writers;
  for (int cpu = 0; cpu < kCpus; ++cpu) {
    writers.emplace_back([&recorder, cpu] {
      for (uint64_t i = 0; i < kEvents; ++i) {
        recorder.Record(cpu, obs::FlightEventKind::kMarker, i, "wrap",
                        static_cast<uint64_t>(cpu), i);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }

  EXPECT_EQ(recorder.events_recorded(), kCpus * kEvents);
  EXPECT_EQ(recorder.events_dropped(), kCpus * (kEvents - kCapacity));
  EXPECT_EQ(recorder.occupancy(), kCpus * kCapacity);

  std::vector<obs::FlightEvent> merged = recorder.MergedEvents();
  ASSERT_EQ(merged.size(), kCpus * kCapacity);
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_GT(merged[i].seq, merged[i - 1].seq);
  }
  // Overwrite-oldest: each ring retains exactly its most recent kCapacity
  // events, in order.
  std::vector<std::vector<uint64_t>> per_ring(kCpus);
  for (const obs::FlightEvent& e : merged) {
    per_ring[e.ring].push_back(e.a1);
  }
  for (int cpu = 0; cpu < kCpus; ++cpu) {
    ASSERT_EQ(per_ring[cpu].size(), kCapacity);
    std::sort(per_ring[cpu].begin(), per_ring[cpu].end());
    for (size_t i = 0; i < kCapacity; ++i) {
      EXPECT_EQ(per_ring[cpu][i], kEvents - kCapacity + i);
    }
  }
}

}  // namespace
}  // namespace lvm
