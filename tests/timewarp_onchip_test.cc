// Time Warp on the Section 4.6 machine: the LVM state saver over
// virtually-addressed logs (no write-through, no overload), plus the
// memory-pressure CULT policy.
#include <gtest/gtest.h>

#include <vector>

#include "src/timewarp/lvm_state_saver.h"
#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

std::vector<Event> Bootstrap(uint32_t jobs, uint32_t total, uint64_t seed) {
  std::vector<Event> events;
  Rng rng(seed);
  for (uint32_t i = 0; i < jobs; ++i) {
    Event event;
    event.time = 1 + rng.Uniform(6);
    event.target_object = static_cast<uint32_t>(rng.Uniform(total));
    event.payload = rng.Next64();
    events.push_back(event);
  }
  return events;
}

TEST(OnChipWarpTest, OptimisticMatchesSequentialOnOnChipMachine) {
  PholdModel::Params params;
  params.locality = 0.5;
  params.locality_domain = 4;
  PholdModel model(params);
  TimeWarpConfig config;
  config.num_schedulers = 3;
  config.objects_per_scheduler = 4;
  config.object_size = 96;
  config.state_saving = StateSaving::kLvm;
  config.cult_interval = 32;
  constexpr VirtualTime kEnd = 800;
  std::vector<Event> bootstrap = Bootstrap(12, 12, 711);

  LvmConfig machine_config;
  machine_config.logger_kind = LoggerKind::kOnChip;
  LvmSystem optimistic_system(machine_config);
  TimeWarpSimulation optimistic(&optimistic_system, &model, config);
  for (const Event& event : bootstrap) {
    optimistic.Bootstrap(event);
  }
  optimistic.Run(kEnd);
  EXPECT_GT(optimistic.total_rollbacks(), 0u);
  EXPECT_EQ(optimistic_system.overload_suspensions(), 0u);  // Section 4.6.

  LvmSystem sequential_system;  // Bus-logger machine: saver kind differs too.
  uint64_t expected =
      SequentialDigest(&sequential_system, &model, config, bootstrap, kEnd);
  EXPECT_EQ(OptimisticDigest(&optimistic, kEnd), expected);
}

TEST(OnChipWarpTest, VirtualRecordRollForwardIsExact) {
  // Single scheduler on an on-chip machine: force a rollback via a
  // scripted straggler and check state (covers the virtual-address marker
  // and apply paths deterministically).
  PholdModel::Params params;
  params.locality = 0.0;
  PholdModel model(params);
  TimeWarpConfig config;
  config.num_schedulers = 2;
  config.objects_per_scheduler = 2;
  config.object_size = 64;
  config.state_saving = StateSaving::kLvm;
  constexpr VirtualTime kEnd = 400;
  std::vector<Event> bootstrap = Bootstrap(8, 4, 99);

  LvmConfig machine_config;
  machine_config.logger_kind = LoggerKind::kOnChip;
  LvmSystem system(machine_config);
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : bootstrap) {
    sim.Bootstrap(event);
  }
  sim.Run(kEnd);

  LvmSystem sequential_system;
  uint64_t expected = SequentialDigest(&sequential_system, &model, config, bootstrap, kEnd);
  EXPECT_EQ(OptimisticDigest(&sim, kEnd), expected);
}

TEST(MemoryPressureCultTest, LogLimitForcesCollection) {
  // With periodic CULT effectively disabled, the page limit alone must
  // keep the logs bounded.
  LvmSystem system;
  PholdModel model(PholdModel::Params{});
  TimeWarpConfig config;
  config.num_schedulers = 2;
  config.objects_per_scheduler = 4;
  config.state_saving = StateSaving::kLvm;
  config.cult_interval = 1u << 30;   // Never by count.
  config.cult_log_pages_limit = 4;   // ~1000 records.
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : Bootstrap(8, 8, 5)) {
    sim.Bootstrap(event);
  }
  sim.Run(4000);
  EXPECT_GT(sim.total_events_processed(), 400u);
  for (uint32_t i = 0; i < sim.num_schedulers(); ++i) {
    auto* saver = static_cast<LvmStateSaver*>(sim.scheduler(i).saver());
    EXPECT_LE(saver->HistoryPages(), config.cult_log_pages_limit + 1);
    EXPECT_GT(saver->checkpoint_time(), 0u);  // CULT ran.
  }
}

TEST(MemoryPressureCultTest, NoLimitMeansLogsGrow) {
  LvmSystem system;
  PholdModel model(PholdModel::Params{});
  TimeWarpConfig config;
  config.num_schedulers = 2;
  config.objects_per_scheduler = 4;
  config.state_saving = StateSaving::kLvm;
  config.cult_interval = 1u << 30;
  config.cult_log_pages_limit = 0;
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : Bootstrap(8, 8, 5)) {
    sim.Bootstrap(event);
  }
  sim.Run(4000);
  uint32_t max_pages = 0;
  for (uint32_t i = 0; i < sim.num_schedulers(); ++i) {
    auto* saver = static_cast<LvmStateSaver*>(sim.scheduler(i).saver());
    max_pages = std::max(max_pages, saver->HistoryPages());
  }
  EXPECT_GT(max_pages, 8u);
}

}  // namespace
}  // namespace lvm
