// Property-based Time Warp tests: for a sweep of configurations (scheduler
// counts, savers, models, seeds), the optimistic run must compute exactly
// the state the sequential reference computes, no matter how many
// rollbacks and anti-messages it took to get there.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

struct WarpCase {
  const char* name;
  uint32_t schedulers;
  uint32_t objects_per_scheduler;
  uint32_t object_size;
  StateSaving saving;
  uint32_t cult_interval;
  bool phold;  // Otherwise the synthetic model.
  uint64_t seed;
  VirtualTime horizon;
};

std::vector<Event> Bootstrap(uint32_t jobs, uint32_t total_objects, uint64_t seed) {
  std::vector<Event> events;
  Rng rng(seed);
  for (uint32_t i = 0; i < jobs; ++i) {
    Event event;
    event.time = 1 + rng.Uniform(6);
    event.target_object = static_cast<uint32_t>(rng.Uniform(total_objects));
    event.payload = rng.Next64();
    events.push_back(event);
  }
  return events;
}

class WarpPropertyTest : public ::testing::TestWithParam<WarpCase> {};

TEST_P(WarpPropertyTest, OptimisticEqualsSequential) {
  const WarpCase& param = GetParam();
  TimeWarpConfig config;
  config.num_schedulers = param.schedulers;
  config.objects_per_scheduler = param.objects_per_scheduler;
  config.object_size = param.object_size;
  config.state_saving = param.saving;
  config.cult_interval = param.cult_interval;

  SyntheticModel::Params synthetic_params;
  synthetic_params.remote_probability = 0.35;
  synthetic_params.writes = 5;
  SyntheticModel synthetic(synthetic_params);
  PholdModel::Params phold_params;
  phold_params.mean_delay = 7.0;
  phold_params.locality = 0.5;
  phold_params.locality_domain = param.objects_per_scheduler;
  PholdModel phold(phold_params);
  SimulationModel* model = param.phold ? static_cast<SimulationModel*>(&phold)
                                       : static_cast<SimulationModel*>(&synthetic);

  uint32_t total = param.schedulers * param.objects_per_scheduler;
  std::vector<Event> bootstrap = Bootstrap(total, total, param.seed);

  LvmSystem optimistic_system;
  TimeWarpSimulation optimistic(&optimistic_system, model, config);
  for (const Event& event : bootstrap) {
    optimistic.Bootstrap(event);
  }
  optimistic.Run(param.horizon);

  LvmSystem sequential_system;
  uint64_t expected =
      SequentialDigest(&sequential_system, model, config, bootstrap, param.horizon);

  EXPECT_EQ(OptimisticDigest(&optimistic, param.horizon), expected);
  if (param.schedulers > 1) {
    EXPECT_GT(optimistic.total_rollbacks(), 0u) << "sweep point exercised no rollbacks";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WarpPropertyTest,
    ::testing::Values(
        WarpCase{"copy_2sched_synth", 2, 4, 64, StateSaving::kCopy, 32, false, 101, 900},
        WarpCase{"lvm_2sched_synth", 2, 4, 64, StateSaving::kLvm, 32, false, 101, 900},
        WarpCase{"copy_4sched_synth", 4, 3, 96, StateSaving::kCopy, 16, false, 102, 700},
        WarpCase{"lvm_4sched_synth", 4, 3, 96, StateSaving::kLvm, 16, false, 102, 700},
        WarpCase{"copy_2sched_phold", 2, 6, 128, StateSaving::kCopy, 64, true, 103, 800},
        WarpCase{"lvm_2sched_phold", 2, 6, 128, StateSaving::kLvm, 64, true, 103, 800},
        WarpCase{"copy_6sched_phold", 6, 2, 64, StateSaving::kCopy, 16, true, 104, 600},
        WarpCase{"lvm_6sched_phold", 6, 2, 64, StateSaving::kLvm, 16, true, 104, 600},
        WarpCase{"lvm_3sched_big_objects", 3, 4, 512, StateSaving::kLvm, 24, true, 105, 700},
        WarpCase{"lvm_aggressive_cult", 2, 4, 64, StateSaving::kLvm, 4, false, 106, 800},
        WarpCase{"copy_aggressive_cult", 2, 4, 64, StateSaving::kCopy, 4, false, 106, 800},
        WarpCase{"lvm_rare_cult", 2, 4, 64, StateSaving::kLvm, 4096, false, 107, 600}),
    [](const ::testing::TestParamInfo<WarpCase>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace lvm
