// Unit tests for src/base utilities.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/base/ring_buffer.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace lvm {
namespace {

TEST(TypesTest, PageArithmetic) {
  EXPECT_EQ(kPageSize, 4096u);
  EXPECT_EQ(kLineSize, 16u);
  EXPECT_EQ(kLinesPerPage, 256u);
  EXPECT_EQ(PageNumber(0x12345), 0x12u);
  EXPECT_EQ(PageBase(0x12345), 0x12000u);
  EXPECT_EQ(PageOffset(0x12345), 0x345u);
  EXPECT_EQ(LineBase(0x12345), 0x12340u);
  EXPECT_EQ(LineIndexInPage(0x12345), 0x34u);
}

TEST(TypesTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, kPageSize), 0u);
  EXPECT_EQ(AlignUp(1, kPageSize), kPageSize);
  EXPECT_EQ(AlignUp(kPageSize, kPageSize), kPageSize);
  EXPECT_EQ(AlignUp(kPageSize + 1, kPageSize), 2 * kPageSize);
  EXPECT_EQ(AlignUp(17, 16), 32u);
}

TEST(RingBufferTest, FifoOrder) {
  RingBuffer<int> fifo(4);
  EXPECT_TRUE(fifo.empty());
  fifo.Push(1);
  fifo.Push(2);
  fifo.Push(3);
  EXPECT_EQ(fifo.size(), 3u);
  EXPECT_EQ(fifo.Front(), 1);
  EXPECT_EQ(fifo.Pop(), 1);
  EXPECT_EQ(fifo.Pop(), 2);
  fifo.Push(4);
  fifo.Push(5);
  fifo.Push(6);
  EXPECT_TRUE(fifo.full());
  EXPECT_EQ(fifo.Pop(), 3);
  EXPECT_EQ(fifo.Pop(), 4);
  EXPECT_EQ(fifo.Pop(), 5);
  EXPECT_EQ(fifo.Pop(), 6);
  EXPECT_TRUE(fifo.empty());
}

TEST(RingBufferTest, WrapAroundManyTimes) {
  RingBuffer<uint64_t> fifo(7);
  uint64_t next_in = 0;
  uint64_t next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (!fifo.full()) {
      fifo.Push(next_in++);
    }
    while (!fifo.empty()) {
      EXPECT_EQ(fifo.Pop(), next_out++);
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(RingBufferTest, OverflowAborts) {
  RingBuffer<int> fifo(1);
  fifo.Push(1);
  EXPECT_DEATH(fifo.Push(2), "overflow");
}

TEST(RingBufferTest, UnderflowAborts) {
  RingBuffer<int> fifo(1);
  EXPECT_DEATH(fifo.Pop(), "underflow");
}

TEST(RingBufferTest, ClearEmpties) {
  RingBuffer<int> fifo(3);
  fifo.Push(1);
  fifo.Push(2);
  fifo.Clear();
  EXPECT_TRUE(fifo.empty());
  fifo.Push(9);
  EXPECT_EQ(fifo.Pop(), 9);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    uint64_t r = rng.UniformRange(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(1234);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    double x = rng.Exponential(10.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  double mean = sum / kSamples;
  EXPECT_NEAR(mean, 10.0, 0.5);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

}  // namespace
}  // namespace lvm
