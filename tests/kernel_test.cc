// Kernel-path tests: region teardown, multi-CPU behaviour, watchpoint
// queries, and machine-parameter monotonicity properties.
#include <gtest/gtest.h>

#include <string>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/lvm/watch.h"

namespace lvm {
namespace {

// --- UnbindRegion ---

TEST(UnbindRegionTest, PagesUnmappedAndFaultAfterUnbind) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.Activate(as);
  cpu.Write(base, 42);
  EXPECT_GT(as->mapped_pages(), 0u);
  system.UnbindRegion(region);
  EXPECT_EQ(as->mapped_pages(), 0u);
  EXPECT_FALSE(region->bound());
  EXPECT_DEATH(cpu.Read(base), "unresolvable page fault");
}

TEST(UnbindRegionTest, SegmentContentsSurviveRebind) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.Activate(as);
  cpu.Write(base + 8, 1234);
  system.UnbindRegion(region);
  VirtAddr base2 = as->BindRegion(region, 0x0200'0000);
  EXPECT_EQ(cpu.Read(base2 + 8), 1234u);
}

TEST(UnbindRegionTest, LoggingStopsAfterUnbind) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  cpu.Write(base, 1);
  system.UnbindRegion(region);
  // Writes to the same physical frame through a fresh (unlogged) region
  // over the same segment must not be captured.
  Region* fresh = system.CreateRegion(segment);
  VirtAddr base2 = as->BindRegion(fresh);
  cpu.Write(base2 + 4, 2);
  system.SyncLog(&cpu, log);
  LogReader reader(system.memory(), *log);
  ASSERT_EQ(reader.size(), 1u);
  EXPECT_EQ(reader.At(0).value, 1u);
}

TEST(UnbindRegionTest, DeferredRelationSurvivesUnbind) {
  // Deferred copy is a segment-to-segment relation (Table 1): unbinding
  // and rebinding the working region preserves the read-through view.
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* checkpoint = system.CreateSegment(kPageSize);
  StdSegment* working = system.CreateSegment(kPageSize);
  working->SetSourceSegment(checkpoint);
  Region* checkpoint_region = system.CreateRegion(checkpoint);
  Region* working_region = system.CreateRegion(working);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr cbase = as->BindRegion(checkpoint_region);
  VirtAddr wbase = as->BindRegion(working_region);
  system.Activate(as);
  cpu.Write(cbase + 0, 111);   // Checkpoint data.
  cpu.Write(wbase + 64, 222);  // Working modification (different line).
  EXPECT_EQ(cpu.Read(wbase + 0), 111u);
  system.UnbindRegion(working_region);
  VirtAddr wbase2 = as->BindRegion(working_region);
  EXPECT_EQ(cpu.Read(wbase2 + 0), 111u);
  EXPECT_EQ(cpu.Read(wbase2 + 64), 222u);
  // Checkpoint writes still show through unmodified lines.
  cpu.Write(cbase + 0, 999);
  EXPECT_EQ(cpu.Read(wbase2 + 0), 999u);
}

TEST(DetachSourceTest, MaterializesAndSevers) {
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* checkpoint = system.CreateSegment(kPageSize);
  StdSegment* working = system.CreateSegment(kPageSize);
  working->SetSourceSegment(checkpoint);
  Region* checkpoint_region = system.CreateRegion(checkpoint);
  Region* working_region = system.CreateRegion(working);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr cbase = as->BindRegion(checkpoint_region);
  VirtAddr wbase = as->BindRegion(working_region);
  system.Activate(as);
  cpu.Write(cbase + 0, 111);
  cpu.Write(wbase + 64, 222);
  system.DetachSource(&cpu, working);
  EXPECT_EQ(working->source_segment(), nullptr);
  EXPECT_FALSE(system.deferred_copy().IsMapped(working->FrameAt(0)));
  // The segment stands alone with its effective contents frozen.
  EXPECT_EQ(cpu.Read(wbase + 0), 111u);
  EXPECT_EQ(cpu.Read(wbase + 64), 222u);
  // Later checkpoint writes no longer show through.
  cpu.Write(cbase + 0, 999);
  EXPECT_EQ(cpu.Read(wbase + 0), 111u);
  // And resets are no-ops now.
  system.ResetDeferredCopy(&cpu, as, wbase, wbase + kPageSize);
  EXPECT_EQ(cpu.Read(wbase + 64), 222u);
}

// --- multiple CPUs ---

TEST(MultiCpuTest, IndependentLoggedRegions) {
  LvmConfig config;
  config.num_cpus = 2;
  LvmSystem system(config);
  struct Proc {
    StdSegment* segment;
    Region* region;
    LogSegment* log;
    AddressSpace* as;
    VirtAddr base;
  };
  Proc procs[2];
  for (int i = 0; i < 2; ++i) {
    procs[i].segment = system.CreateSegment(2 * kPageSize);
    procs[i].region = system.CreateRegion(procs[i].segment);
    procs[i].log = system.CreateLogSegment();
    procs[i].as = system.CreateAddressSpace();
    procs[i].base = procs[i].as->BindRegion(procs[i].region);
    system.AttachLog(procs[i].region, procs[i].log);
    system.Activate(procs[i].as, i);
  }
  // Interleave rounds on the two CPUs.
  for (uint32_t round = 0; round < 200; ++round) {
    for (int i = 0; i < 2; ++i) {
      system.cpu(i).Write(procs[i].base + 4 * (round % 512),
                          1000u * static_cast<uint32_t>(i) + round);
      system.cpu(i).Compute(200);
    }
  }
  for (int i = 0; i < 2; ++i) {
    system.SyncLog(&system.cpu(i), procs[i].log);
    LogReader reader(system.memory(), *procs[i].log);
    ASSERT_EQ(reader.size(), 200u) << "cpu " << i;
    for (uint32_t round = 0; round < 200; ++round) {
      EXPECT_EQ(reader.At(round).value, 1000u * static_cast<uint32_t>(i) + round);
    }
  }
}

TEST(MultiCpuTest, OverloadSuspendsAllProcessors) {
  LvmConfig config;
  config.num_cpus = 2;
  LvmSystem system(config);
  StdSegment* segment = system.CreateSegment(16 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(64);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as, 0);
  // CPU 0 floods the logger; CPU 1 sits idle at time ~0.
  for (uint32_t i = 0; i < 1200; ++i) {
    system.cpu(0).Write(base + 4 * (i % 1024), i);
  }
  ASSERT_GT(system.overload_suspensions(), 0u);
  // The kernel suspended every processor until the drain completed.
  EXPECT_GT(system.cpu(1).now(), 10000u);
  EXPECT_GT(system.cpu(1).stall_cycles(), 10000u);
}

// --- watchpoints ---

class WatchTest : public ::testing::Test {
 protected:
  WatchTest() {
    segment_ = system_.CreateSegment(4 * kPageSize);
    region_ = system_.CreateRegion(segment_);
    log_ = system_.CreateLogSegment();
    as_ = system_.CreateAddressSpace();
    base_ = as_->BindRegion(region_);
    system_.AttachLog(region_, log_);
    system_.Activate(as_);
  }
  LvmSystem system_;
  StdSegment* segment_ = nullptr;
  Region* region_ = nullptr;
  LogSegment* log_ = nullptr;
  AddressSpace* as_ = nullptr;
  VirtAddr base_ = 0;
};

TEST_F(WatchTest, FindWritesToRange) {
  Cpu& cpu = system_.cpu();
  cpu.Write(base_ + 0, 1);
  cpu.Compute(500);
  cpu.Write(base_ + 100, 2);
  cpu.Compute(500);
  cpu.Write(base_ + 104, 3);
  cpu.Compute(500);
  cpu.Write(base_ + kPageSize, 4);
  system_.SyncLog(&cpu, log_);
  LogReader reader(system_.memory(), *log_);
  auto hits = FindWritesTo(reader, *region_, base_ + 100, base_ + 108);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].value, 2u);
  EXPECT_EQ(hits[0].va, base_ + 100);
  EXPECT_EQ(hits[1].value, 3u);
}

TEST_F(WatchTest, SubWordOverlapDetected) {
  Cpu& cpu = system_.cpu();
  cpu.Write(base_ + 102, 0x7, 1);  // One byte inside the watched word.
  system_.SyncLog(&cpu, log_);
  LogReader reader(system_.memory(), *log_);
  auto hits = FindWritesTo(reader, *region_, base_ + 100, base_ + 104);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].size, 1u);
}

TEST_F(WatchTest, LastWriterBeforeTimestamp) {
  Cpu& cpu = system_.cpu();
  cpu.Write(base_ + 40, 1);
  cpu.Compute(4000);
  cpu.Write(base_ + 40, 2);
  cpu.Compute(4000);
  cpu.Write(base_ + 40, 3);
  system_.SyncLog(&cpu, log_);
  LogReader reader(system_.memory(), *log_);
  auto hits = FindWritesTo(reader, *region_, base_ + 40, base_ + 44);
  ASSERT_EQ(hits.size(), 3u);
  WatchHit hit;
  ASSERT_TRUE(LastWriterBefore(reader, *region_, base_ + 40, base_ + 44,
                               hits[2].timestamp, &hit));
  EXPECT_EQ(hit.value, 2u);
  ASSERT_TRUE(LastWriterBefore(reader, *region_, base_ + 40, base_ + 44,
                               hits[1].timestamp, &hit));
  EXPECT_EQ(hit.value, 1u);
  EXPECT_FALSE(LastWriterBefore(reader, *region_, base_ + 40, base_ + 44,
                                hits[0].timestamp, &hit));
}

TEST_F(WatchTest, AuditDetectsStrayWrites) {
  // Section 2.7: objects placed in the wrong region show up as records
  // outside the expected ranges.
  Cpu& cpu = system_.cpu();
  // Expected object ranges: [0,256) and [1024, 1280).
  std::vector<AuditRange> expected = {{base_, base_ + 256}, {base_ + 1024, base_ + 1280}};
  cpu.Write(base_ + 16, 1);           // In range.
  cpu.Write(base_ + 1100, 2);         // In range.
  cpu.Write(base_ + 600, 3);          // STRAY.
  cpu.Write(base_ + 254, 4);          // Straddles a range end: stray.
  system_.SyncLog(&cpu, log_);
  LogReader reader(system_.memory(), *log_);
  std::vector<WatchHit> strays;
  EXPECT_EQ(AuditLogPlacement(reader, *region_, expected, &strays), 2u);
  ASSERT_EQ(strays.size(), 2u);
  EXPECT_EQ(strays[0].va, base_ + 600);
  EXPECT_EQ(strays[1].va, base_ + 254);
}

TEST_F(WatchTest, AuditCleanLogReportsZero) {
  Cpu& cpu = system_.cpu();
  std::vector<AuditRange> expected = {{base_, base_ + region_->size()}};
  for (uint32_t i = 0; i < 30; ++i) {
    cpu.Write(base_ + 8 * i, i);
    cpu.Compute(200);
  }
  system_.SyncLog(&cpu, log_);
  LogReader reader(system_.memory(), *log_);
  EXPECT_EQ(AuditLogPlacement(reader, *region_, expected), 0u);
}

// --- on-chip logger context switching ---

TEST(OnChipContextSwitchTest, DescriptorsFollowTheActiveSpace) {
  // Two address spaces alternate on one processor; the on-chip descriptor
  // table is unloaded/reloaded at each switch and records flow to the
  // right logs.
  LvmConfig config;
  config.logger_kind = LoggerKind::kOnChip;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();
  struct Proc {
    StdSegment* segment;
    Region* region;
    LogSegment* log;
    AddressSpace* as;
    VirtAddr base;
  };
  Proc procs[2];
  for (auto& proc : procs) {
    proc.segment = system.CreateSegment(kPageSize);
    proc.region = system.CreateRegion(proc.segment);
    proc.log = system.CreateLogSegment();
    proc.as = system.CreateAddressSpace();
    proc.base = proc.as->BindRegion(proc.region, 0x0100'0000);  // Same VA in both!
    system.AttachLog(proc.region, proc.log);
  }
  for (uint32_t round = 0; round < 20; ++round) {
    for (int p = 0; p < 2; ++p) {
      system.Activate(procs[p].as);
      cpu.Write(procs[p].base + 4 * round, 100u * static_cast<uint32_t>(p) + round);
      cpu.Compute(100);
    }
  }
  for (int p = 0; p < 2; ++p) {
    system.Activate(procs[p].as);
    system.SyncLog(&cpu, procs[p].log);
    LogReader reader(system.memory(), *procs[p].log);
    ASSERT_EQ(reader.size(), 20u) << "process " << p;
    for (uint32_t round = 0; round < 20; ++round) {
      EXPECT_EQ(reader.At(round).value, 100u * static_cast<uint32_t>(p) + round);
      // Records carry the (shared) virtual address.
      EXPECT_EQ(reader.At(round).addr, procs[p].base + 4 * round);
    }
  }
}

// --- machine-parameter monotonicity properties ---

Cycles BurstCost(uint32_t buffer_depth) {
  MachineParams params;
  params.write_buffer_depth = buffer_depth;
  LvmConfig config;
  config.params = params;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(16 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(64);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  system.TouchRegion(&cpu, region);
  cpu.DrainWriteBuffer();
  Cycles t0 = cpu.now();
  for (uint32_t i = 0; i < 500; ++i) {
    for (uint32_t w = 0; w < 8; ++w) {
      cpu.Write(base + 4 * ((8 * i + w) % 1024), w);
    }
    cpu.Compute(400);
  }
  return cpu.now() - t0;
}

TEST(ParamPropertyTest, DeeperWriteBufferNeverSlower) {
  Cycles previous = ~Cycles{0};
  for (uint32_t depth : {1u, 2u, 4u, 8u, 16u}) {
    Cycles cost = BurstCost(depth);
    EXPECT_LE(cost, previous) << "depth " << depth;
    previous = cost;
  }
}

uint64_t OverloadsAtService(uint32_t service_cycles) {
  MachineParams params;
  params.logger_service_active_cycles = service_cycles;
  LvmConfig config;
  config.params = params;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(16 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(64);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  system.TouchRegion(&cpu, region);
  for (uint32_t i = 0; i < 4000; ++i) {
    cpu.Write(base + 4 * (i % 1024), i);
    cpu.Compute(20);
  }
  return system.overload_suspensions();
}

TEST(ParamPropertyTest, FasterLoggerNeverMoreOverloads) {
  uint64_t previous = ~uint64_t{0};
  for (uint32_t service : {54u, 27u, 18u, 9u}) {
    uint64_t overloads = OverloadsAtService(service);
    EXPECT_LE(overloads, previous) << "service " << service;
    previous = overloads;
  }
  EXPECT_EQ(OverloadsAtService(9), 0u);  // Faster than the write rate.
}

}  // namespace
}  // namespace lvm
