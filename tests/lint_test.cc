// lvm-lint engine tests: every rule against a violating and a clean fixture
// (tests/lint_fixtures/), suppression comments, exit-code mapping, the
// strict-JSON report, and — the check that matters — a clean run over the
// repo's real src/ tree.
#include "tools/lvm_lint/lint.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(LVM_SOURCE_ROOT) + "/tests/lint_fixtures/" + name;
}

LintResult LintFixture(const std::string& name) {
  LintResult result;
  std::string error;
  EXPECT_TRUE(LintPaths({FixturePath(name)}, LintOptions{}, &result, &error)) << error;
  return result;
}

// Violations of exactly one rule, reported with that rule's exit code.
void ExpectOnlyRule(const LintResult& result, Rule rule) {
  ASSERT_FALSE(result.violations.empty());
  for (const Violation& v : result.violations) {
    EXPECT_EQ(v.rule, rule) << v.file << ":" << v.line << ": " << v.message;
    EXPECT_GT(v.line, 0);
  }
  EXPECT_EQ(ExitCodeFor(result), RuleExitCode(rule));
}

TEST(LintRules, RawStoreViolation) {
  LintResult result = LintFixture("raw_store_violation.cc");
  ExpectOnlyRule(result, Rule::kRawStore);
  EXPECT_EQ(result.violations.size(), 2u);  // WriteBlock and CopyBlock
  EXPECT_EQ(ExitCodeFor(result), 10);
}

TEST(LintRules, RawStoreClean) {
  LintResult result = LintFixture("raw_store_clean.cc");
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(ExitCodeFor(result), 0);
}

TEST(LintRules, RawStoreAllowedInMachineLayers) {
  // The same source is clean when it lives under a whitelisted directory.
  LintOptions options;
  LintResult result;
  LintSource("src/sim/fake_cache.cc", "void F(M* m) { m->WriteBlock(0, p, 16); }", options,
             &result);
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintRules, FlightPairingViolation) {
  LintResult result = LintFixture("flight_pairing_violation.cc");
  ExpectOnlyRule(result, Rule::kFlightPairing);
  EXPECT_EQ(ExitCodeFor(result), 11);
}

TEST(LintRules, FlightPairingClean) {
  LintResult result = LintFixture("flight_pairing_clean.cc");
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintRules, MetricNameViolation) {
  LintResult result = LintFixture("metric_name_violation.cc");
  ExpectOnlyRule(result, Rule::kMetricName);
  EXPECT_EQ(result.violations.size(), 2u);
  EXPECT_EQ(ExitCodeFor(result), 12);
}

TEST(LintRules, MetricNameClean) {
  LintResult result = LintFixture("metric_name_clean.cc");
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintRules, SchemaVersionViolation) {
  LintResult result = LintFixture("schema_version_violation.cc");
  ExpectOnlyRule(result, Rule::kSchemaVersion);
  EXPECT_EQ(result.violations.size(), 2u);  // side_report + waterfall literal
  EXPECT_EQ(ExitCodeFor(result), 13);
}

TEST(LintRules, SchemaVersionClean) {
  LintResult result = LintFixture("schema_version_clean.cc");
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintRules, SchemaVersionAllowedInRegistryHeader) {
  LintOptions options;
  LintResult result;
  LintSource("src/obs/schema_ids.h",
             "inline constexpr const char kFoo[] = \"lvm.foo.v1\";", options, &result);
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintRules, CheckMacroViolation) {
  LintResult result = LintFixture("check_macro_violation.cc");
  ExpectOnlyRule(result, Rule::kCheckMacro);
  EXPECT_EQ(ExitCodeFor(result), 14);
}

TEST(LintRules, CheckMacroClean) {
  LintResult result = LintFixture("check_macro_clean.cc");
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintRules, ProfScopeViolation) {
  LintResult result = LintFixture("prof_scope_violation.cc");
  ExpectOnlyRule(result, Rule::kProfScope);
  EXPECT_EQ(ExitCodeFor(result), 15);
}

TEST(LintRules, ProfScopeClean) {
  LintResult result = LintFixture("prof_scope_clean.cc");
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintRules, WalRawStoreViolation) {
  LintResult result = LintFixture("wal_raw_store_violation.cc");
  ExpectOnlyRule(result, Rule::kWalRawStore);
  EXPECT_EQ(result.violations.size(), 2u);  // raw_block_bytes and raw_superblock_bytes
  EXPECT_EQ(ExitCodeFor(result), 16);
}

TEST(LintRules, WalRawStoreClean) {
  LintResult result = LintFixture("wal_raw_store_clean.cc");
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(ExitCodeFor(result), 0);
}

TEST(LintRules, WalRawStoreAllowedInHostlvm) {
  // The arena's own implementation IS the framed append path.
  LintOptions options;
  LintResult result;
  LintSource("src/hostlvm/wal_arena.cc",
             "void F(WalArena* w) { w->raw_block_bytes(0)[0] = 1; }", options, &result);
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintRules, WalRawStoreSuppressible) {
  // Crash-injection tests corrupt WAL bytes on purpose; the allow() comment
  // is their sanctioned escape hatch.
  LintOptions options;
  LintResult result;
  LintSource("tests/fault_injector.cc",
             "// lvm-lint: allow(wal-raw-store)\n"
             "void F(WalArena* w) { w->raw_block_bytes(0)[0] ^= 0xff; }\n",
             options, &result);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.suppressions_used, 1u);
}

TEST(LintRules, ProfScopeDefinitionHeaderIsBalanced) {
  // The profiler header defines each marker macro exactly once, so the
  // counting rule must see the definitions themselves as balanced.
  LintResult result;
  std::string error;
  ASSERT_TRUE(LintPaths({std::string(LVM_SOURCE_ROOT) + "/src/obs/profiler.h"}, LintOptions{},
                        &result, &error))
      << error;
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintRules, DeadSuppressionViolation) {
  LintResult result = LintFixture("dead_suppression_violation.cc");
  ExpectOnlyRule(result, Rule::kDeadSuppression);
  EXPECT_EQ(result.violations.size(), 2u);  // stale rule and unknown slug
  EXPECT_EQ(ExitCodeFor(result), 17);
}

TEST(LintRules, DeadSuppressionClean) {
  LintResult result = LintFixture("dead_suppression_clean.cc");
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(ExitCodeFor(result), 0);
}

TEST(LintSuppression, AllowCommentSilencesBothStyles) {
  LintResult result = LintFixture("raw_store_suppressed.cc");
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.suppressions_used, 2u);  // preceding-line and same-line
  EXPECT_EQ(ExitCodeFor(result), 0);
}

TEST(LintSuppression, AllowOfOtherRuleDoesNotSilence) {
  LintOptions options;
  LintResult result;
  LintSource("fixture.cc",
             "// lvm-lint: allow(metric-name)\n"
             "void F(M* m) { m->CopyBlock(0, 1, 16); }\n",
             options, &result);
  // The raw store still fires, and the allow() that matched nothing is now
  // itself a dead-suppression finding.
  ASSERT_EQ(result.violations.size(), 2u);
  EXPECT_EQ(result.violations[0].rule, Rule::kRawStore);
  EXPECT_EQ(result.violations[1].rule, Rule::kDeadSuppression);
  EXPECT_EQ(result.suppressions_used, 0u);
}

TEST(LintDeadSuppression, StaleAllowIsAFinding) {
  LintOptions options;
  LintResult result;
  LintSource("fixture.cc",
             "// lvm-lint: allow(raw-store)\n"
             "void F() {}\n",
             options, &result);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].rule, Rule::kDeadSuppression);
  EXPECT_EQ(result.violations[0].line, 1);
  EXPECT_EQ(ExitCodeFor(result), 17);
}

TEST(LintDeadSuppression, UnknownSlugIsAFinding) {
  LintOptions options;
  LintResult result;
  LintSource("fixture.cc",
             "// lvm-lint: allow(not-a-rule)\n"
             "void F() {}\n",
             options, &result);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].rule, Rule::kDeadSuppression);
}

TEST(LintDeadSuppression, UsedAllowIsNotAFinding) {
  LintOptions options;
  LintResult result;
  LintSource("fixture.cc",
             "// lvm-lint: allow(raw-store)\n"
             "void F(M* m) { m->CopyBlock(0, 1, 16); }\n",
             options, &result);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.suppressions_used, 1u);
}

TEST(LintDeadSuppression, FencedKeeperIsSilenced) {
  LintOptions options;
  LintResult result;
  LintSource("fixture.cc",
             "// Kept for a generated include below. lvm-lint: allow(dead-suppression)\n"
             "// lvm-lint: allow(raw-store)\n"
             "void F() {}\n",
             options, &result);
  EXPECT_TRUE(result.violations.empty());
  // Two suppression events: the fence silences the stale allow(raw-store),
  // and (being on its own otherwise-unmatched line) it also fences itself.
  EXPECT_EQ(result.suppressions_used, 2u);
}

TEST(LintExitCodes, MixedRulesCollapseToGenericFailure) {
  LintOptions options;
  LintResult result;
  LintSource("fixture.cc",
             "void F(M* m) { m->CopyBlock(0, 1, 16); assert(true); }\n", options, &result);
  ASSERT_EQ(result.violations.size(), 2u);
  EXPECT_EQ(ExitCodeFor(result), 1);
}

TEST(LintExitCodes, RuleNamesRoundTrip) {
  for (Rule rule : {Rule::kRawStore, Rule::kFlightPairing, Rule::kMetricName,
                    Rule::kSchemaVersion, Rule::kCheckMacro, Rule::kProfScope,
                    Rule::kWalRawStore}) {
    Rule parsed;
    ASSERT_TRUE(ParseRuleName(RuleName(rule), &parsed)) << RuleName(rule);
    EXPECT_EQ(parsed, rule);
  }
  Rule unused;
  EXPECT_FALSE(ParseRuleName("no-such-rule", &unused));
}

TEST(LintReport, StrictJsonWithSchemaAndViolations) {
  LintResult result = LintFixture("metric_name_violation.cc");
  const std::string json = ReportJson(result);
  ASSERT_TRUE(obs::ValidateJson(json)) << json;
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(json, &root, &error)) << error;
  EXPECT_EQ(root.GetString("schema"), obs::kLintReportSchema);
  EXPECT_EQ(root.GetUint64("files_scanned"), 1u);
  EXPECT_EQ(root.GetUint64("violation_count"), result.violations.size());
  const obs::JsonValue* violations = root.Find("violations");
  ASSERT_NE(violations, nullptr);
  ASSERT_EQ(violations->Items().size(), result.violations.size());
  const obs::JsonValue& first = violations->Items()[0];
  EXPECT_EQ(first.GetString("rule"), "metric-name");
  EXPECT_EQ(first.GetUint64("exit_code"), 12u);
  EXPECT_GT(first.GetUint64("line"), 0u);
}

TEST(LintReport, EmptyReportIsStrictJson) {
  LintResult result;
  const std::string json = ReportJson(result);
  EXPECT_TRUE(obs::ValidateJson(json)) << json;
}

TEST(LintPathsIo, MissingPathFails) {
  LintResult result;
  std::string error;
  EXPECT_FALSE(LintPaths({FixturePath("no_such_fixture.cc")}, LintOptions{}, &result, &error));
  EXPECT_FALSE(error.empty());
}

// The rules are not aspirational: the real tree must hold them (with its
// deliberate, commented suppressions).
TEST(LintTree, RepoSourcesAreClean) {
  LintResult result;
  std::string error;
  ASSERT_TRUE(
      LintPaths({std::string(LVM_SOURCE_ROOT) + "/src"}, LintOptions{}, &result, &error))
      << error;
  EXPECT_GT(result.files_scanned, 50u);
  for (const Violation& v : result.violations) {
    ADD_FAILURE() << v.file << ":" << v.line << ": [" << RuleName(v.rule) << "] " << v.message;
  }
  // The Time Warp copy baseline carries the one deliberate allow().
  EXPECT_GE(result.suppressions_used, 1u);
}

}  // namespace
}  // namespace lint
}  // namespace lvm
