// Unit tests for the machine model: CPU costs, write buffer, bus, caches.
#include <gtest/gtest.h>

#include <bitset>
#include <cstring>

#include "src/sim/bus.h"
#include "src/sim/cpu.h"
#include "src/sim/interfaces.h"
#include "src/sim/l2_cache.h"
#include "src/sim/machine.h"
#include "src/sim/params.h"
#include "src/sim/phys_mem.h"

namespace lvm {
namespace {

// Identity translator: virtual address == physical address, with flags
// selectable per page set.
class IdentityTranslator : public AddressTranslator {
 public:
  bool Translate(VirtAddr va, AccessKind access, Translation* out) override {
    (void)access;
    out->paddr = va;
    out->write_through = write_through_;
    out->logged = logged_;
    return true;
  }

  void set_write_through(bool value) { write_through_ = value; }
  void set_logged(bool value) { logged_ = value; }

 private:
  bool write_through_ = false;
  bool logged_ = false;
};

class SimTest : public ::testing::Test {
 protected:
  SimTest() : machine_(MachineParams{}, 8u << 20, 1) {
    machine_.cpu().set_translator(&translator_);
  }

  Machine machine_;
  IdentityTranslator translator_;
};

TEST_F(SimTest, PhysicalMemoryReadWrite) {
  PhysicalMemory& mem = machine_.memory();
  mem.Write(0x1000, 0xdeadbeef, 4);
  EXPECT_EQ(mem.Read(0x1000, 4), 0xdeadbeefu);
  EXPECT_EQ(mem.Read(0x1000, 2), 0xbeefu);
  EXPECT_EQ(mem.Read(0x1000, 1), 0xefu);
  mem.Write(0x1002, 0x12, 1);
  EXPECT_EQ(mem.Read(0x1000, 4), 0xde12beefu);
}

TEST_F(SimTest, PhysicalMemoryBlockOps) {
  PhysicalMemory& mem = machine_.memory();
  uint8_t pattern[kLineSize];
  for (uint32_t i = 0; i < kLineSize; ++i) {
    pattern[i] = static_cast<uint8_t>(i * 3);
  }
  mem.WriteBlock(0x2000, pattern, kLineSize);
  uint8_t out[kLineSize];
  mem.ReadBlock(0x2000, out, kLineSize);
  EXPECT_EQ(std::memcmp(pattern, out, kLineSize), 0);
  mem.CopyBlock(0x3000, 0x2000, kLineSize);
  mem.ReadBlock(0x3000, out, kLineSize);
  EXPECT_EQ(std::memcmp(pattern, out, kLineSize), 0);
  mem.Zero(0x3000, kLineSize);
  EXPECT_EQ(mem.Read(0x3000, 4), 0u);
}

TEST_F(SimTest, PhysicalMemoryOutOfRangeAborts) {
  EXPECT_DEATH(machine_.memory().Read(machine_.memory().size(), 4), "out of range");
}

TEST_F(SimTest, ComputeAdvancesClock) {
  Cpu& cpu = machine_.cpu();
  EXPECT_EQ(cpu.now(), 0u);
  cpu.Compute(100);
  EXPECT_EQ(cpu.now(), 100u);
}

TEST_F(SimTest, UnloggedWriteCost) {
  Cpu& cpu = machine_.cpu();
  cpu.Write(0x1000, 7);
  EXPECT_EQ(cpu.now(), machine_.params().unlogged_write_cycles);
  EXPECT_EQ(machine_.memory().Read(0x1000, 4), 7u);
}

TEST_F(SimTest, WriteThroughIsolatedWriteCostsTableTwo) {
  // An isolated write-through word: issue (total - bus) on the CPU plus the
  // bus transfer draining in the background. End-to-end it is Table 2's 6
  // cycles: 1 CPU cycle + 5 bus cycles.
  translator_.set_write_through(true);
  Cpu& cpu = machine_.cpu();
  cpu.Write(0x1000, 7);
  Cycles cpu_side = cpu.now();
  cpu.DrainWriteBuffer();
  const MachineParams& p = machine_.params();
  EXPECT_EQ(cpu_side, p.word_write_through_total - p.word_write_through_bus);
  EXPECT_EQ(cpu.now(), static_cast<Cycles>(p.word_write_through_total));
}

TEST_F(SimTest, WriteThroughBurstStallsOnFullBuffer) {
  // A long burst is bus-limited: the write buffer absorbs the first `depth`
  // writes, after which the CPU stalls at the bus rate.
  translator_.set_write_through(true);
  Cpu& cpu = machine_.cpu();
  constexpr int kWrites = 100;
  for (int i = 0; i < kWrites; ++i) {
    cpu.Write(0x1000 + 4u * static_cast<uint32_t>(i), i);
  }
  cpu.DrainWriteBuffer();
  const MachineParams& p = machine_.params();
  // Bus-limited throughput: ~bus cycles per write.
  EXPECT_GE(cpu.now(), static_cast<Cycles>(kWrites) * p.word_write_through_bus);
  EXPECT_LE(cpu.now(), static_cast<Cycles>(kWrites) * p.word_write_through_total);
}

TEST_F(SimTest, WriteThroughSmallBurstsAbsorbed) {
  // Bursts no deeper than the buffer cost only the CPU-side cycles when
  // separated by enough computation (Section 4.5.2 / Figure 10 flat region).
  translator_.set_write_through(true);
  Cpu& cpu = machine_.cpu();
  const MachineParams& p = machine_.params();
  Cycles start = cpu.now();
  for (int iter = 0; iter < 10; ++iter) {
    for (uint32_t w = 0; w < p.write_buffer_depth; ++w) {
      cpu.Write(0x1000 + 4u * w, w);
    }
    cpu.Compute(1000);
  }
  Cycles elapsed = cpu.now() - start;
  Cycles cpu_side_per_write = p.word_write_through_total - p.word_write_through_bus;
  EXPECT_EQ(elapsed, 10 * (1000 + p.write_buffer_depth * cpu_side_per_write));
}

TEST_F(SimTest, ReadCostsThreeLevels) {
  Cpu& cpu = machine_.cpu();
  const MachineParams& p = machine_.params();
  machine_.memory().Write(0x1000, 42, 4);

  // Cold: misses both caches.
  Cycles t0 = cpu.now();
  EXPECT_EQ(cpu.Read(0x1000), 42u);
  EXPECT_EQ(cpu.now() - t0, p.memory_read_cycles);

  // Hot in the on-chip cache.
  t0 = cpu.now();
  EXPECT_EQ(cpu.Read(0x1000), 42u);
  EXPECT_EQ(cpu.now() - t0, p.l1_read_hit_cycles);

  // Evict from L1 by reading a conflicting line, then re-read: L2 hit.
  uint32_t conflict = 0x1000 + p.l1_data_lines * kLineSize;
  cpu.Read(conflict);
  t0 = cpu.now();
  EXPECT_EQ(cpu.Read(0x1000), 42u);
  EXPECT_EQ(cpu.now() - t0, p.l2_read_hit_cycles);
}

TEST_F(SimTest, BusArbitrationSerializes) {
  Bus& bus = machine_.bus();
  Cycles g1 = bus.Acquire(100, 8);
  Cycles g2 = bus.Acquire(100, 8);
  EXPECT_EQ(g1, 100u);
  EXPECT_EQ(g2, 108u);
  EXPECT_EQ(bus.next_free(), 116u);
  // A later request after the bus frees is granted immediately.
  Cycles g3 = bus.Acquire(200, 4);
  EXPECT_EQ(g3, 200u);
  EXPECT_EQ(bus.busy_cycles(), 20u);
  EXPECT_EQ(bus.transactions(), 3u);
}

TEST_F(SimTest, PageFaultHandlerInvokedOnce) {
  class CountingHandler : public PageFaultHandler {
   public:
    explicit CountingHandler(IdentityTranslator* t) : translator_(t) {}
    bool OnPageFault(Cpu* cpu, VirtAddr va, AccessKind access) override {
      (void)cpu;
      (void)va;
      (void)access;
      ++faults;
      return true;  // Identity translator "resolves" everything.
    }
    int faults = 0;

   private:
    IdentityTranslator* translator_;
  };

  // A translator that faults on the first access only.
  class FaultOnceTranslator : public AddressTranslator {
   public:
    bool Translate(VirtAddr va, AccessKind access, Translation* out) override {
      (void)access;
      if (!mapped_) {
        return false;
      }
      out->paddr = va;
      return true;
    }
    bool mapped_ = false;
  };

  FaultOnceTranslator faulting;
  class Resolver : public PageFaultHandler {
   public:
    explicit Resolver(FaultOnceTranslator* t) : t_(t) {}
    bool OnPageFault(Cpu* cpu, VirtAddr, AccessKind) override {
      cpu->AddCycles(100);
      t_->mapped_ = true;
      ++faults;
      return true;
    }
    int faults = 0;

   private:
    FaultOnceTranslator* t_;
  };
  Resolver resolver(&faulting);
  Cpu& cpu = machine_.cpu();
  cpu.set_translator(&faulting);
  cpu.set_fault_handler(&resolver);
  cpu.Write(0x1000, 5);
  cpu.Write(0x1004, 6);
  EXPECT_EQ(resolver.faults, 1);
  EXPECT_EQ(cpu.page_faults(), 1u);
  EXPECT_EQ(machine_.memory().Read(0x1000, 4), 5u);
}

// --- L2 cache / deferred copy policy mechanics ---

class TestPolicy : public DeferredCopyPolicy {
 public:
  // Redirects clean reads of dest page 0x4000 to source page 0x8000.
  PhysAddr ResolveClean(PhysAddr paddr) override {
    if (PageBase(paddr) == 0x4000 && !written_back_.test(LineIndexInPage(paddr))) {
      return 0x8000 + PageOffset(paddr);
    }
    return paddr;
  }
  void OnLineWriteback(PhysAddr line) override {
    if (PageBase(line) == 0x4000) {
      written_back_.set(LineIndexInPage(line));
    }
  }
  std::bitset<kLinesPerPage> written_back_;
};

TEST(L2CacheTest, CleanReadResolvesThroughPolicy) {
  PhysicalMemory mem(1u << 20);
  L2Cache l2(&mem);
  TestPolicy policy;
  l2.set_policy(&policy);
  mem.Write(0x8000, 111, 4);  // Source datum.
  mem.Write(0x4000, 222, 4);  // Stale destination datum.
  EXPECT_EQ(l2.Read(0x4000, 4), 111u);
}

TEST(L2CacheTest, WriteFillsLineFromSourceThenDirties) {
  PhysicalMemory mem(1u << 20);
  L2Cache l2(&mem);
  TestPolicy policy;
  l2.set_policy(&policy);
  mem.Write(0x8000, 111, 4);
  mem.Write(0x8004, 333, 4);
  // Partial write to the destination line: the other words must come from
  // the source (fill-on-write).
  l2.Write(0x4004, 999, 4);
  EXPECT_TRUE(l2.LineDirty(0x4004));
  EXPECT_EQ(l2.Read(0x4004, 4), 999u);
  EXPECT_EQ(l2.Read(0x4000, 4), 111u);  // Filled from source.
}

TEST(L2CacheTest, WritebackFlipsSourceToDestination) {
  PhysicalMemory mem(1u << 20);
  L2Cache l2(&mem);
  TestPolicy policy;
  l2.set_policy(&policy);
  mem.Write(0x8000, 111, 4);
  l2.Write(0x4000, 999, 4);
  EXPECT_TRUE(l2.PageDirty(0x4000));
  L2Cache::PageOpResult r = l2.FlushPage(0x4000);
  EXPECT_EQ(r.dirty_lines, 1u);
  EXPECT_FALSE(l2.PageDirty(0x4000));
  EXPECT_TRUE(policy.written_back_.test(0));
  // After writeback the clean read resolves to the destination.
  EXPECT_EQ(l2.Read(0x4000, 4), 999u);
}

TEST(L2CacheTest, InvalidateDiscardsDirtyData) {
  PhysicalMemory mem(1u << 20);
  L2Cache l2(&mem);
  TestPolicy policy;
  l2.set_policy(&policy);
  mem.Write(0x8000, 111, 4);
  l2.Write(0x4000, 999, 4);
  L2Cache::PageOpResult r = l2.InvalidatePage(0x4000);
  EXPECT_EQ(r.dirty_lines, 1u);
  // No writeback notification: reads resolve to the source again.
  EXPECT_FALSE(policy.written_back_.test(0));
  EXPECT_EQ(l2.Read(0x4000, 4), 111u);
}

TEST(L2CacheTest, DirtyLineCountsPerPage) {
  PhysicalMemory mem(1u << 20);
  L2Cache l2(&mem);
  for (uint32_t i = 0; i < 10; ++i) {
    l2.Write(0x4000 + i * kLineSize, i, 4);
  }
  EXPECT_TRUE(l2.PageDirty(0x4000));
  L2Cache::PageOpResult r = l2.FlushPage(0x4000);
  EXPECT_EQ(r.dirty_lines, 10u);
  EXPECT_FALSE(l2.PageDirty(0x4000));
}

TEST(L2CacheTest, FlushLineSingle) {
  PhysicalMemory mem(1u << 20);
  L2Cache l2(&mem);
  l2.Write(0x4000, 1, 4);
  EXPECT_TRUE(l2.FlushLine(0x4000));
  EXPECT_FALSE(l2.FlushLine(0x4000));  // Already clean.
  EXPECT_FALSE(l2.FlushLine(0x5000));  // Never present.
}

}  // namespace
}  // namespace lvm
