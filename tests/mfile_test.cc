// Tests of memory-mapped files and log-based incremental msync.
#include <gtest/gtest.h>

#include <cstring>

#include "src/mfile/mapped_file.h"

namespace lvm {
namespace {

class MappedFileTest : public ::testing::Test {
 protected:
  MappedFileTest() {
    file_ = fs_.Create("data.db", 8 * kPageSize);
    // Pre-populate the "on-disk" contents.
    for (uint32_t i = 0; i < file_->size() / 4; ++i) {
      uint32_t value = 0xF11E0000u + i;
      std::memcpy(file_->data() + 4 * i, &value, 4);
    }
    as_ = system_.CreateAddressSpace();
    mapped_ = std::make_unique<MappedFile>(&system_, as_, file_);
    system_.Activate(as_);
  }

  LvmSystem system_;
  FileSystem fs_;
  SimFile* file_ = nullptr;
  AddressSpace* as_ = nullptr;
  std::unique_ptr<MappedFile> mapped_;
};

TEST_F(MappedFileTest, DemandPagingLoadsFileContents) {
  Cpu& cpu = system_.cpu();
  EXPECT_EQ(cpu.Read(mapped_->base()), 0xF11E0000u);
  EXPECT_EQ(cpu.Read(mapped_->base() + 3 * kPageSize + 8),
            0xF11E0000u + (3 * kPageSize + 8) / 4);
  // Only the touched pages were read from the device.
  EXPECT_EQ(file_->bytes_read(), 2 * kPageSize);
}

TEST_F(MappedFileTest, FullMsyncWritesMaterializedPages) {
  Cpu& cpu = system_.cpu();
  cpu.Write(mapped_->base() + 16, 0xAAAA);
  cpu.Write(mapped_->base() + kPageSize + 32, 0xBBBB);
  mapped_->Msync(&cpu);
  EXPECT_EQ(file_->ReadWord(16), 0xAAAAu);
  EXPECT_EQ(file_->ReadWord(kPageSize + 32), 0xBBBBu);
  // Untouched words of the written pages kept their values.
  EXPECT_EQ(file_->ReadWord(20), 0xF11E0000u + 5);
  // Whole pages went to the device.
  EXPECT_EQ(file_->bytes_written(), 2 * kPageSize);
}

TEST_F(MappedFileTest, LogBasedMsyncWritesOnlyUpdatedBytes) {
  mapped_->AttachLogging();
  Cpu& cpu = system_.cpu();
  cpu.Write(mapped_->base() + 16, 0xAAAA);
  cpu.Write(mapped_->base() + 5 * kPageSize, 0xCCCC);
  cpu.Write(mapped_->base() + 5 * kPageSize + 100, 0x77, 1);
  mapped_->MsyncFromLog(&cpu);
  EXPECT_EQ(file_->ReadWord(16), 0xAAAAu);
  EXPECT_EQ(file_->ReadWord(5 * kPageSize), 0xCCCCu);
  EXPECT_EQ(file_->data()[5 * kPageSize + 100], 0x77);
  // 4 + 4 + 1 bytes, not pages.
  EXPECT_EQ(file_->bytes_written(), 9u);
}

TEST_F(MappedFileTest, RepeatedSyncsAreIncremental) {
  mapped_->AttachLogging();
  Cpu& cpu = system_.cpu();
  cpu.Write(mapped_->base(), 1);
  mapped_->MsyncFromLog(&cpu);
  uint64_t after_first = file_->bytes_written();
  cpu.Write(mapped_->base() + 4, 2);
  mapped_->MsyncFromLog(&cpu);
  // The second sync wrote only the second update.
  EXPECT_EQ(file_->bytes_written() - after_first, 4u);
  EXPECT_EQ(file_->ReadWord(0), 1u);
  EXPECT_EQ(file_->ReadWord(4), 2u);
}

TEST_F(MappedFileTest, LogBasedSyncFarCheaperForSparseUpdates) {
  // Two identical mappings; one page-synced, one log-synced.
  SimFile* other = fs_.Create("other.db", 8 * kPageSize);
  MappedFile page_synced(&system_, as_, other);
  mapped_->AttachLogging();
  Cpu& cpu = system_.cpu();

  // Sparse: one word on each of 8 pages, in both mappings.
  for (uint32_t page = 0; page < 8; ++page) {
    cpu.Write(mapped_->base() + page * kPageSize, page);
    cpu.Write(page_synced.base() + page * kPageSize, page);
  }
  Cycles t0 = cpu.now();
  mapped_->MsyncFromLog(&cpu);
  Cycles log_cost = cpu.now() - t0;
  t0 = cpu.now();
  page_synced.Msync(&cpu);
  Cycles page_cost = cpu.now() - t0;

  EXPECT_LT(file_->bytes_written(), 64u);
  EXPECT_EQ(other->bytes_written(), 8 * kPageSize);
  EXPECT_LT(log_cost * 10, page_cost);
}

TEST_F(MappedFileTest, MsyncThenCrashConsistency) {
  // The file reflects exactly the synced prefix: updates after the last
  // msync are not on "disk".
  mapped_->AttachLogging();
  Cpu& cpu = system_.cpu();
  cpu.Write(mapped_->base(), 100);
  mapped_->MsyncFromLog(&cpu);
  cpu.Write(mapped_->base(), 200);  // Never synced.
  EXPECT_EQ(file_->ReadWord(0), 100u);
}

TEST_F(MappedFileTest, FullMsyncTruncatesLogToo) {
  mapped_->AttachLogging();
  Cpu& cpu = system_.cpu();
  cpu.Write(mapped_->base(), 5);
  mapped_->Msync(&cpu);
  // A following log-based sync has nothing to write.
  uint64_t before = file_->bytes_written();
  mapped_->MsyncFromLog(&cpu);
  EXPECT_EQ(file_->bytes_written(), before);
}

TEST(FileSystemTest, CreateAndOpen) {
  FileSystem fs;
  SimFile* f = fs.Create("a", 100);
  EXPECT_EQ(f->size(), kPageSize);  // Rounded up.
  EXPECT_EQ(fs.Open("a"), f);
  EXPECT_EQ(fs.Open("missing"), nullptr);
  EXPECT_DEATH(fs.Create("a", 100), "already exists");
}

}  // namespace
}  // namespace lvm
