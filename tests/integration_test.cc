// Cross-module integration scenarios: the facilities composed the way a
// real system would use them.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/lvm/log_stream.h"
#include "src/lvm/trace_stats.h"
#include "src/lvm/watch.h"
#include "src/mfile/mapped_file.h"
#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

TEST(IntegrationTest, SimulationStateSnapshotToMappedFile) {
  // Run an optimistic simulation, then persist every object's final state
  // into a memory-mapped file with a log-based incremental msync.
  LvmSystem system;
  PholdModel::Params model_params;
  model_params.locality = 0.5;
  model_params.locality_domain = 4;
  PholdModel model(model_params);
  TimeWarpConfig config;
  config.num_schedulers = 2;
  config.objects_per_scheduler = 4;
  config.object_size = 64;
  config.state_saving = StateSaving::kLvm;
  TimeWarpSimulation sim(&system, &model, config);
  Rng rng(31);
  for (int job = 0; job < 8; ++job) {
    Event event;
    event.time = 1 + rng.Uniform(4);
    event.target_object = static_cast<uint32_t>(rng.Uniform(8));
    event.payload = rng.Next64();
    sim.Bootstrap(event);
  }
  sim.Run(600);

  FileSystem fs;
  SimFile* file = fs.Create("snapshot.db", 8 * 64);
  AddressSpace* snapshot_as = system.CreateAddressSpace();
  MappedFile snapshot(&system, snapshot_as, file);
  snapshot.AttachLogging();

  // Copy object words out of each scheduler's (deferred, logged) working
  // region into the mapped snapshot, then sync only what changed.
  std::vector<uint32_t> expected;
  uint32_t out = 0;
  for (uint32_t s = 0; s < sim.num_schedulers(); ++s) {
    Scheduler& scheduler = sim.scheduler(s);
    Cpu& cpu = *scheduler.cpu();
    for (uint32_t obj = 0; obj < scheduler.num_objects(); ++obj) {
      std::vector<uint32_t> words(scheduler.object_size() / 4);
      system.Activate(scheduler.address_space(), cpu.id());
      for (uint32_t w = 0; w < words.size(); ++w) {
        words[w] = cpu.Read(scheduler.ObjectAddr(obj) + 4 * w);
      }
      system.Activate(snapshot_as, cpu.id());
      for (uint32_t w = 0; w < words.size(); ++w) {
        cpu.Write(snapshot.base() + out, words[w]);
        expected.push_back(words[w]);
        out += 4;
      }
    }
  }
  snapshot.MsyncFromLog(&system.cpu(0));

  for (uint32_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(file->ReadWord(4 * i), expected[i]) << "word " << i;
  }
  // The sync wrote only the snapshot bytes, not whole pages per page
  // touched... (8 objects x 64B = 512 bytes exactly).
  EXPECT_EQ(file->bytes_written(), expected.size() * 4);
}

TEST(IntegrationTest, TraceAnalysisOfMappedFileWorkload) {
  // The mapped file's log doubles as an address trace of the "database"
  // workload before it is consumed by msync.
  LvmSystem system;
  FileSystem fs;
  SimFile* file = fs.Create("db", 16 * kPageSize);
  AddressSpace* as = system.CreateAddressSpace();
  MappedFile mapped(&system, as, file);
  mapped.AttachLogging();
  system.Activate(as);
  Cpu& cpu = system.cpu();
  // A skewed workload: 90% of writes hit page 0.
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    uint32_t page = rng.Chance(0.9) ? 0 : 1 + static_cast<uint32_t>(rng.Uniform(15));
    cpu.Write(mapped.base() + page * kPageSize + 4 * (i % 64), static_cast<uint32_t>(i));
    cpu.Compute(120);
  }
  system.SyncLog(&cpu, mapped.region()->log_segment());
  LogReader reader(system.memory(), *mapped.region()->log_segment());
  TraceStats stats = AnalyzeTrace(reader);
  EXPECT_EQ(stats.records, 500u);
  EXPECT_GT(stats.hottest_page_writes, 400u);
  EXPECT_GT(stats.rewrites, 300u);
  // msync still works after the analysis.
  mapped.MsyncFromLog(&cpu);
  EXPECT_LE(file->bytes_written(), 500u * 4);
}

TEST(IntegrationTest, WatchThenSurgicalUndo) {
  // Debugger workflow on the on-chip logger with old-value capture: find
  // the corrupting write with a watchpoint query, then undo the tail of
  // the log back through it.
  LvmConfig config;
  config.logger_kind = LoggerKind::kOnChip;
  config.onchip_log_old_values = true;
  LvmSystem system(config);
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(2 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);

  VirtAddr sentinel = base + 512;
  cpu.Write(sentinel, 0xA5A5A5A5);
  for (uint32_t i = 0; i < 100; ++i) {
    cpu.Write(base + 4 * i, i);
  }
  cpu.Write(sentinel, 0xBAD);  // The corruption.
  cpu.Write(base + 4, 999);    // Later unrelated work.
  system.SyncLog(&cpu, log);

  LogReader reader(system.memory(), *log);
  // On-chip records carry virtual addresses; find the corrupting write
  // directly (skip pre-image records).
  size_t culprit = reader.size();
  for (size_t i = 0; i < reader.size(); ++i) {
    LogRecord record = reader.At(i);
    if ((record.flags & kRecordFlagOldValue) == 0 && record.addr == sentinel &&
        record.value != 0xA5A5A5A5) {
      culprit = i;
    }
  }
  ASSERT_LT(culprit, reader.size());
  // Undo everything from the culprit onward, restoring the sentinel (and
  // rolling the unrelated later write back too, as reverse execution
  // does).
  LogApplier applier(&system);
  applier.UndoVirtual(&cpu, reader, culprit - 1, reader.size(), as);
  EXPECT_EQ(cpu.Read(sentinel), 0xA5A5A5A5u);
  EXPECT_EQ(cpu.Read(base + 4), 1u);  // The pre-corruption value.
}

TEST(IntegrationTest, StreamingReplicaFollowsProducer) {
  // A consumer keeps a replica consistent by draining the producer's log
  // through a LogStream at arbitrary points — no release protocol, just
  // the Section 2.6 output pattern.
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* shared = system.CreateSegment(4 * kPageSize);
  Region* region = system.CreateRegion(shared);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);

  std::vector<uint8_t> replica(4 * kPageSize, 0);
  LogStream stream(&system, log);
  Rng rng(17);
  for (int burst = 0; burst < 30; ++burst) {
    for (int w = 0; w < 20; ++w) {
      uint32_t offset = static_cast<uint32_t>(rng.Uniform(4 * kPageSize / 4)) * 4;
      cpu.Write(base + offset, static_cast<uint32_t>(rng.Next64()));
      cpu.Compute(100);
    }
    stream.Refresh(&cpu);
    while (stream.HasNext()) {
      LogRecord record = stream.Next();
      int32_t page = shared->PageIndexOfFrame(record.addr);
      ASSERT_GE(page, 0);
      uint32_t offset = static_cast<uint32_t>(page) * kPageSize + PageOffset(record.addr);
      std::memcpy(&replica[offset], &record.value, record.size);
    }
    // The replica matches the producer exactly at every drain point.
    for (uint32_t probe = 0; probe < 16; ++probe) {
      uint32_t at = static_cast<uint32_t>(rng.Uniform(4 * kPageSize / 4)) * 4;
      uint32_t expected = 0;
      std::memcpy(&expected, &replica[at], 4);
      ASSERT_EQ(cpu.Read(base + at), expected) << "burst " << burst;
    }
  }
}

}  // namespace
}  // namespace lvm
