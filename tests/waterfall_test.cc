// Tests for the log-path provenance waterfall (src/obs/waterfall).
//
// Covers the tracer's unit contract (deterministic stride sampling, token
// staleness, exact drop accounting under concurrency), the integrated
// six-stage durable flow (parallel shards -> drain -> segment append ->
// WAL group commit -> reopen replay) with the telescoping-latency
// invariant, and the lvm.waterfall.v1 export. The binary is labeled
// `threaded`: several tests hammer real host threads through the tracer,
// which is exactly what the TSan pass should see.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/hostlvm/log_wal_bridge.h"
#include "src/hostlvm/wal_arena.h"
#include "src/logger/log_record.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/schema_ids.h"
#include "src/obs/waterfall.h"
#include "src/par/engine.h"

namespace lvm {
namespace {

using obs::WaterfallConfig;
using obs::WaterfallStage;
using obs::WaterfallTracer;

// Samples `events` writes on `lane`, abandoning every token immediately so
// slot occupancy never perturbs the decision sequence. Returns the sampled
// indices.
std::vector<uint64_t> SampleDecisions(WaterfallTracer* tracer, int lane, uint64_t events) {
  std::vector<uint64_t> sampled;
  for (uint64_t i = 0; i < events; ++i) {
    uint64_t token = tracer->SampleRecord(lane, /*sim_now=*/i, /*queue_depth=*/0);
    if (token != 0) {
      sampled.push_back(i);
      tracer->Abandon(token);
    }
  }
  return sampled;
}

TEST(WaterfallSampling, SameSeedSamplesIdenticalSetOnEveryLane) {
  WaterfallConfig config;
  config.sample_shift = 4;
  config.seed = 42;
  constexpr uint64_t kEvents = 500;
  WaterfallTracer a(2, config);
  WaterfallTracer b(2, config);
  for (int lane = 0; lane < 2; ++lane) {
    std::vector<uint64_t> first = SampleDecisions(&a, lane, kEvents);
    std::vector<uint64_t> second = SampleDecisions(&b, lane, kEvents);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second) << "lane " << lane;
    // Stride sampling: consecutive sampled indices are exactly 2^shift
    // apart, whatever the seed-derived phase.
    for (size_t i = 1; i < first.size(); ++i) {
      EXPECT_EQ(first[i] - first[i - 1], uint64_t{1} << config.sample_shift);
    }
  }
}

TEST(WaterfallSampling, SeedShiftsThePhaseNotTheStride) {
  WaterfallConfig a_config;
  a_config.sample_shift = 5;
  a_config.seed = 1;
  WaterfallConfig b_config = a_config;
  b_config.seed = 2;
  WaterfallTracer a(1, a_config);
  WaterfallTracer b(1, b_config);
  std::vector<uint64_t> first = SampleDecisions(&a, 0, 256);
  std::vector<uint64_t> second = SampleDecisions(&b, 0, 256);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(first.size(), second.size());
  // Different seeds land on different phases of the same stride (the two
  // chosen seeds differ for shift 5; equal phases would be a mixing bug).
  EXPECT_NE(first[0], second[0]);
}

TEST(WaterfallToken, StaleTokensFailResolutionAfterRecycle) {
  WaterfallConfig config;
  config.sample_shift = 0;
  config.inflight_slots = 1;
  WaterfallTracer tracer(1, config);
  uint64_t first = tracer.SampleRecord(0, 0, 0);
  ASSERT_NE(first, 0u);
  tracer.Abandon(first);
  uint64_t second = tracer.SampleRecord(0, 0, 0);
  ASSERT_NE(second, 0u);  // Recycled the same slot with a new generation.
  EXPECT_NE(first, second);
  // The stale token must be ignored everywhere, not corrupt the new owner.
  tracer.Stamp(first, WaterfallStage::kDrain, 0, 0, 0);
  tracer.Complete(first, WaterfallStage::kReplay, 0, 0, 0);
  EXPECT_EQ(tracer.completed(), 0u);
  EXPECT_EQ(tracer.inflight(), 1u);
  tracer.Abandon(second);
}

// Satellite: drop accounting must be exact under concurrent lane-owner
// threads at slot capacity, mirroring the flight ring's wraparound test
// (tests/profiler_test.cc FlightRingWraparound.ExactDropAccounting...).
TEST(WaterfallDropAccounting, ExactDropAccountingUnderConcurrency) {
  constexpr int kLanes = 4;
  constexpr uint32_t kSlots = 8;
  constexpr uint64_t kEvents = 200;
  WaterfallConfig config;
  config.sample_shift = 0;  // Every write sampled: counts are exact.
  config.inflight_slots = kSlots;
  WaterfallTracer tracer(kLanes, config);
  obs::FlightConfig flight_config;
  flight_config.sync_interval = 0;
  obs::FlightRecorder flight(kLanes, flight_config);
  tracer.SetFlightRecorder(&flight);

  std::vector<std::thread> writers;
  for (int lane = 0; lane < kLanes; ++lane) {
    writers.emplace_back([&tracer, lane] {
      for (uint64_t i = 0; i < kEvents; ++i) {
        // Tokens are never completed, so each lane's slots fill and stay
        // full: every sample after the first kSlots is a drop.
        tracer.SampleRecord(lane, i, 0);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }

  EXPECT_EQ(tracer.sampled(), uint64_t{kLanes} * kSlots);
  EXPECT_EQ(tracer.dropped(), uint64_t{kLanes} * (kEvents - kSlots));
  EXPECT_EQ(tracer.inflight(), uint64_t{kLanes} * kSlots);

  // The flight ring saw the same split, kind by kind.
  uint64_t sampled_events = 0;
  uint64_t dropped_events = 0;
  for (const obs::FlightEvent& e : flight.MergedEvents()) {
    if (e.kind == obs::FlightEventKind::kWaterfallSampled) {
      ++sampled_events;
    } else if (e.kind == obs::FlightEventKind::kWaterfallDropped) {
      ++dropped_events;
    }
  }
  EXPECT_EQ(flight.events_recorded(), uint64_t{kLanes} * kEvents);
  EXPECT_LE(sampled_events + dropped_events, uint64_t{kLanes} * kEvents);
}

// `threaded` heart of the binary: concurrent sample/stamp/complete across
// lanes, with completions racing into the shared bounded store.
TEST(WaterfallConcurrency, ConcurrentCompletionAccountsEveryToken) {
  constexpr int kLanes = 4;
  constexpr uint64_t kEvents = 5000;
  WaterfallConfig config;
  config.sample_shift = 2;
  config.inflight_slots = 32;
  config.completed_capacity = 64;  // Force truncation traffic too.
  WaterfallTracer tracer(kLanes, config);

  std::vector<std::thread> workers;
  for (int lane = 0; lane < kLanes; ++lane) {
    workers.emplace_back([&tracer, lane] {
      for (uint64_t i = 0; i < kEvents; ++i) {
        uint64_t token = tracer.SampleRecord(lane, i, 1);
        if (token == 0) {
          continue;
        }
        tracer.Stamp(token, WaterfallStage::kShardEnqueue, lane, i, 2);
        tracer.Stamp(token, WaterfallStage::kDrain, lane, i, 1);
        tracer.Complete(token, WaterfallStage::kSegmentAppend, lane, i, 0);
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }

  EXPECT_EQ(tracer.sampled(), uint64_t{kLanes} * (kEvents >> config.sample_shift));
  EXPECT_EQ(tracer.completed(), tracer.sampled());
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.inflight(), 0u);
  // The bounded store kept its cap; the overflow is accounted, not lost.
  EXPECT_EQ(tracer.Completed().size(), config.completed_capacity);
}

// The tentpole acceptance flow: a durable two-worker parallel run whose
// sampled records flow through all six stages, with per-stage deltas
// telescoping exactly to the end-to-end latency.
class WaterfallDurableFlow : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 2;
  static constexpr uint32_t kSteps = 400;

  std::string WalPath() {
    return ::testing::TempDir() + "waterfall_durable_flow.wal";
  }
};

TEST_F(WaterfallDurableFlow, SixStagesTelescopeEndToEnd) {
  LvmConfig config;
  config.num_cpus = kWorkers;
  LvmSystem system(config);
  WaterfallConfig wconfig;
  wconfig.sample_shift = 4;
  wconfig.completed_capacity = 1024;
  obs::WaterfallTracer* waterfall = system.EnableWaterfall(wconfig);

  AddressSpace* as = system.CreateAddressSpace();
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  std::vector<VirtAddr> bases;
  for (int i = 0; i < kWorkers; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(256 * 4));
    bases.push_back(as->BindRegion(region));
    LogSegment* log = system.CreateLogSegment(8);
    system.AttachLog(region, log);
    regions.push_back(region);
    logs.push_back(log);
  }
  for (int i = 0; i < kWorkers; ++i) {
    system.Activate(as, i);
    system.TouchRegion(&system.cpu(i), regions[i]);
  }

  par::ParallelEngine engine(&system, par::EngineConfig{});
  for (int i = 0; i < kWorkers; ++i) {
    VirtAddr base = bases[i];
    engine.AddWorker(logs[i], [base](Cpu& cpu, uint64_t step) {
      cpu.Write(base + 4 * (step % 256), static_cast<uint32_t>(step * 2654435761u + 1));
      cpu.Compute(30);
      return step + 1 < kSteps;
    });
  }
  engine.Run();
  for (int i = 0; i < kWorkers; ++i) {
    system.SyncLog(&system.cpu(i), logs[i]);
  }
  EXPECT_GT(waterfall->sampled(), 0u);

  const std::string wal_path = WalPath();
  std::string error;
  auto arena = WalArena::Create(wal_path, WalOptions{}, &error);
  ASSERT_NE(arena, nullptr) << error;
  arena->set_waterfall(waterfall);
  uint64_t tokens_carried = 0;
  for (int i = 0; i < kWorkers; ++i) {
    LogReader reader(system.memory(), *logs[i]);
    ASSERT_EQ(reader.size(), kSteps);
    LogWalBridgeStats stats = BridgeLogToWal(reader, 0, reader.size(),
                                             /*records_per_commit=*/32,
                                             /*timestamp_ns=*/7, arena.get(), waterfall);
    EXPECT_EQ(stats.records, kSteps);
    EXPECT_EQ(stats.rejected, 0u);
    tokens_carried += stats.tokens;
  }
  EXPECT_GT(tokens_carried, 0u);
  ASSERT_TRUE(arena->Flush());
  arena.reset();

  arena = WalArena::Open(wal_path, &error);
  ASSERT_NE(arena, nullptr) << error;
  arena->set_waterfall(waterfall);
  WalRecoveryStats recovery = arena->Replay([](const WalRecoveredCommit&) {});
  EXPECT_GT(recovery.commits_applied, 0u);
  arena.reset();
  std::remove(wal_path.c_str());

  // Every token the bridge carried finished the full journey.
  EXPECT_EQ(waterfall->completed(), tokens_carried);
  std::vector<obs::CompletedWaterfall> done = waterfall->Completed();
  ASSERT_EQ(done.size(), tokens_carried);
  const WaterfallStage kExpected[] = {
      WaterfallStage::kRecord,       WaterfallStage::kShardEnqueue,
      WaterfallStage::kDrain,        WaterfallStage::kSegmentAppend,
      WaterfallStage::kWalCommit,    WaterfallStage::kReplay,
  };
  for (const obs::CompletedWaterfall& w : done) {
    ASSERT_EQ(w.hops.size(), 6u) << "waterfall " << w.id;
    uint64_t telescoped = 0;
    for (size_t h = 0; h < w.hops.size(); ++h) {
      EXPECT_EQ(w.hops[h].stage, kExpected[h]) << "waterfall " << w.id << " hop " << h;
      if (h > 0) {
        ASSERT_GE(w.hops[h].wall_ns, w.hops[h - 1].wall_ns);
        telescoped += w.hops[h].wall_ns - w.hops[h - 1].wall_ns;
      }
    }
    // The per-stage deltas are differences of one monotonic series, so
    // they must sum to the end-to-end latency exactly — not just within
    // rounding.
    EXPECT_EQ(telescoped, w.end_to_end_ns) << "waterfall " << w.id;
  }

  // The export is strict JSON under the registered schema id, and its
  // stage table covers all six stages.
  std::string json = waterfall->Json();
  ASSERT_TRUE(obs::ValidateJson(json));
  obs::JsonValue root;
  ASSERT_TRUE(obs::ParseJson(json, &root, &error)) << error;
  EXPECT_EQ(root.GetString("schema"), obs::kWaterfallSchema);
  const obs::JsonValue* stages = root.Find("stages");
  ASSERT_NE(stages, nullptr);
  std::set<std::string> seen;
  for (const obs::JsonValue& stage : stages->Items()) {
    seen.insert(stage.GetString("stage"));
  }
  for (WaterfallStage stage : kExpected) {
    if (stage == WaterfallStage::kRecord) {
      continue;  // Hop 0 is the origin; it opens no interval to charge.
    }
    EXPECT_EQ(seen.count(obs::ToString(stage)), 1u) << obs::ToString(stage);
  }
}

TEST(WaterfallExport, MetricsRegisterAndCountersMatch) {
  WaterfallConfig config;
  config.sample_shift = 0;
  WaterfallTracer tracer(1, config);
  obs::MetricsRegistry registry;
  tracer.RegisterMetrics(&registry);

  uint64_t token = tracer.SampleRecord(0, 0, 3);
  ASSERT_NE(token, 0u);
  tracer.Stamp(token, WaterfallStage::kShardEnqueue, 0, 1, 2);
  tracer.Complete(token, WaterfallStage::kSegmentAppend, 0, 2, 0);

  obs::Snapshot snapshot = registry.TakeSnapshot();
  EXPECT_EQ(snapshot.counters().at("waterfall.sampled"), 1u);
  EXPECT_EQ(snapshot.counters().at("waterfall.completed"), 1u);
  EXPECT_EQ(snapshot.counters().at("waterfall.dropped"), 0u);
  auto hist = snapshot.histograms().find("waterfall.stage_ns.segment_append");
  ASSERT_NE(hist, snapshot.histograms().end());
  EXPECT_EQ(hist->second.count, 1u);
}

TEST(WaterfallExport, FinishInFlightCoversPartialJourneys) {
  WaterfallConfig config;
  config.sample_shift = 0;
  WaterfallTracer tracer(1, config);
  uint64_t token = tracer.SampleRecord(0, 0, 1);
  ASSERT_NE(token, 0u);
  tracer.Stamp(token, WaterfallStage::kShardEnqueue, 0, 1, 1);
  EXPECT_EQ(tracer.inflight(), 1u);
  EXPECT_EQ(tracer.FinishInFlight(), 1u);
  EXPECT_EQ(tracer.inflight(), 0u);
  std::vector<obs::CompletedWaterfall> done = tracer.Completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].hops.back().stage, WaterfallStage::kShardEnqueue);
  ASSERT_TRUE(obs::ValidateJson(tracer.Json()));
}

}  // namespace
}  // namespace lvm
