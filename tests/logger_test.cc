// Unit tests for the logger tables and the bus logger in isolation.
#include <gtest/gtest.h>

#include <vector>

#include "src/logger/hardware_logger.h"
#include "src/logger/log_record.h"
#include "src/logger/tables.h"
#include "src/sim/bus.h"
#include "src/sim/params.h"
#include "src/sim/phys_mem.h"

namespace lvm {
namespace {

TEST(PageMappingTableTest, TagIndexSplit) {
  // 20-bit page number: 5-bit tag, 15-bit index (Section 3.1.1).
  EXPECT_EQ(PageMappingTable::kEntries, 32768u);
  PhysAddr paddr = 0x8000'5000;  // Page number 0x80005.
  EXPECT_EQ(PageMappingTable::IndexOf(paddr), 0x5u);
  EXPECT_EQ(PageMappingTable::TagOf(paddr), 0x10u);
}

TEST(PageMappingTableTest, LookupRequiresTagMatch) {
  PageMappingTable table;
  PhysAddr a = 0x0000'5000;               // Index 5, tag 0.
  PhysAddr b = a + (1u << (kPageShift + PageMappingTable::kIndexBits));  // Same index, tag 1.
  EXPECT_EQ(PageMappingTable::IndexOf(a), PageMappingTable::IndexOf(b));
  EXPECT_NE(PageMappingTable::TagOf(a), PageMappingTable::TagOf(b));

  table.Load(a, 3);
  ASSERT_NE(table.Lookup(a), nullptr);
  EXPECT_EQ(table.Lookup(a)->log_index, 3u);
  EXPECT_EQ(table.Lookup(b), nullptr);  // Tag mismatch.

  // Loading b displaces a (direct mapped).
  EXPECT_TRUE(table.Load(b, 4));
  EXPECT_EQ(table.Lookup(a), nullptr);
  ASSERT_NE(table.Lookup(b), nullptr);
  EXPECT_EQ(table.Lookup(b)->log_index, 4u);
}

TEST(PageMappingTableTest, InvalidateOnlyMatchingTag) {
  PageMappingTable table;
  PhysAddr a = 0x0000'5000;
  PhysAddr b = a + (1u << (kPageShift + PageMappingTable::kIndexBits));
  table.Load(a, 1);
  table.Invalidate(b);  // Different tag: no effect.
  EXPECT_NE(table.Lookup(a), nullptr);
  table.Invalidate(a);
  EXPECT_EQ(table.Lookup(a), nullptr);
}

TEST(LogTableTest, AllocateAndRelease) {
  LogTable table(4);
  uint32_t indexes[4];
  for (auto& index : indexes) {
    ASSERT_TRUE(table.Allocate(LogMode::kNormal, &index));
  }
  uint32_t extra = 0;
  EXPECT_FALSE(table.Allocate(LogMode::kNormal, &extra));
  table.Release(indexes[2]);
  ASSERT_TRUE(table.Allocate(LogMode::kIndexed, &extra));
  EXPECT_EQ(extra, indexes[2]);
  EXPECT_EQ(table.at(extra).mode, LogMode::kIndexed);
}

TEST(LogTableTest, SetTailValidates) {
  LogTable table;
  uint32_t index = 0;
  ASSERT_TRUE(table.Allocate(LogMode::kNormal, &index));
  EXPECT_FALSE(table.at(index).tail_valid);
  table.SetTail(index, 0x7d20);
  EXPECT_TRUE(table.at(index).tail_valid);
  EXPECT_EQ(table.at(index).tail, 0x7d20u);
}

// A fake kernel for driving the logger directly.
class FakeClient : public LoggerFaultClient {
 public:
  explicit FakeClient(HardwareLogger* logger, PhysAddr next_frame)
      : logger_(logger), next_frame_(next_frame) {}

  bool OnMappingFault(PhysAddr paddr, Cycles time) override {
    (void)time;
    ++mapping_faults;
    if (!reload_mappings) {
      return false;
    }
    logger_->page_mapping_table().Load(paddr, 0);
    return true;
  }

  bool OnLogTailFault(uint32_t log_index, Cycles time) override {
    (void)time;
    ++tail_faults;
    logger_->log_table().SetTail(log_index, next_frame_);
    next_frame_ += kPageSize;
    return true;
  }

  void OnOverload(Cycles interrupt_time, Cycles drain_complete) override {
    ++overloads;
    last_drain_complete = drain_complete;
    (void)interrupt_time;
  }

  HardwareLogger* logger_;
  PhysAddr next_frame_;
  int mapping_faults = 0;
  int tail_faults = 0;
  int overloads = 0;
  Cycles last_drain_complete = 0;
  bool reload_mappings = true;
};

class HardwareLoggerTest : public ::testing::Test {
 protected:
  static constexpr PhysAddr kDataPage = 0x10000;
  static constexpr PhysAddr kLogPage = 0x40000;

  HardwareLoggerTest()
      : memory_(1u << 20), logger_(&params_, &memory_, &bus_), client_(&logger_, kLogPage) {
    logger_.set_fault_client(&client_);
    uint32_t index = 0;
    EXPECT_TRUE(logger_.log_table().Allocate(LogMode::kNormal, &index));
    EXPECT_EQ(index, 0u);
    logger_.page_mapping_table().Load(kDataPage, 0);
  }

  MachineParams params_;
  PhysicalMemory memory_;
  Bus bus_;
  HardwareLogger logger_;
  FakeClient client_;
};

TEST_F(HardwareLoggerTest, IgnoresUnloggedWrites) {
  logger_.OnBusWrite(kDataPage, 1, 4, /*logged=*/false, 0, 0);
  logger_.SyncDrain(0);
  EXPECT_EQ(logger_.records_logged(), 0u);
}

TEST_F(HardwareLoggerTest, RecordFormatMatchesPaperExample) {
  // Section 3.1.1's example: a write of 4321 to address 10004 lands as
  // <address, datum, size, timestamp> at the log tail.
  logger_.log_table().SetTail(0, 0x7d20);
  logger_.page_mapping_table().Load(0x00010000, 0);
  logger_.OnBusWrite(0x00010004, 4321, 4, true, /*time=*/400, 0);
  logger_.SyncDrain(10000);
  ASSERT_EQ(logger_.records_logged(), 1u);
  LogRecord record = LoadLogRecord(memory_, 0x7d20);
  EXPECT_EQ(record.addr, 0x00010004u);
  EXPECT_EQ(record.value, 4321u);
  EXPECT_EQ(record.size, 4u);
  EXPECT_EQ(record.timestamp, 400u / params_.timestamp_divider);
  // The tail advanced by one 16-byte record.
  EXPECT_EQ(logger_.log_table().at(0).tail, 0x7d20u + kLogRecordSize);
}

TEST_F(HardwareLoggerTest, TailFaultOnFirstRecordAndPageCrossing) {
  // No tail loaded: the first record raises a logging fault the client
  // resolves; crossing a page boundary raises another.
  constexpr uint32_t kRecordsPerPage = kPageSize / kLogRecordSize;
  for (uint32_t i = 0; i <= kRecordsPerPage; ++i) {
    logger_.OnBusWrite(kDataPage + 4 * i, i, 4, true, 1000u * i, 0);
  }
  logger_.SyncDrain(~0ull >> 1);
  EXPECT_EQ(logger_.records_logged(), kRecordsPerPage + 1);
  EXPECT_EQ(client_.tail_faults, 2);
  // First page of records, then one record in the second frame.
  EXPECT_EQ(LoadLogRecord(memory_, kLogPage).value, 0u);
  EXPECT_EQ(LoadLogRecord(memory_, kLogPage + kPageSize - kLogRecordSize).value,
            kRecordsPerPage - 1);
  EXPECT_EQ(LoadLogRecord(memory_, kLogPage + kPageSize).value, kRecordsPerPage);
}

TEST_F(HardwareLoggerTest, MappingFaultReload) {
  logger_.page_mapping_table().Invalidate(kDataPage);
  logger_.OnBusWrite(kDataPage, 5, 4, true, 0, 0);
  logger_.SyncDrain(1u << 20);
  EXPECT_EQ(client_.mapping_faults, 1);
  EXPECT_EQ(logger_.records_logged(), 1u);
}

TEST_F(HardwareLoggerTest, DropsWhenMappingUnresolvable) {
  client_.reload_mappings = false;
  logger_.page_mapping_table().Invalidate(kDataPage);
  logger_.OnBusWrite(kDataPage, 5, 4, true, 0, 0);
  logger_.SyncDrain(1u << 20);
  EXPECT_EQ(logger_.records_logged(), 0u);
  EXPECT_EQ(logger_.records_dropped(), 1u);
}

TEST_F(HardwareLoggerTest, OverloadTriggersAtThreshold) {
  // Back-to-back writes at time ~0 cannot drain at the active service rate:
  // occupancy reaches the threshold and the logger drains fully at the DMA
  // rate, notifying the kernel.
  uint32_t n = params_.logger_fifo_threshold + 64;
  for (uint32_t i = 0; i < n; ++i) {
    logger_.OnBusWrite(kDataPage + (4 * i) % kPageSize, i, 4, true, i, 0);
  }
  EXPECT_EQ(client_.overloads, 1);
  EXPECT_EQ(logger_.overload_events(), 1u);
  // The drain emptied the FIFO; only the writes issued after the overload
  // event remain queued.
  EXPECT_LE(logger_.fifo_occupancy(), 64u);
  // The drain takes roughly threshold * DMA cycles.
  EXPECT_GE(client_.last_drain_complete,
            static_cast<Cycles>(params_.logger_fifo_threshold - 16) *
                params_.logger_service_drain_cycles);
  logger_.SyncDrain(0);
  EXPECT_EQ(logger_.records_logged(), n);
}

TEST_F(HardwareLoggerTest, SlowWritesNeverOverload) {
  // One logged write per 2x the active service time: the FIFO never backs
  // up (Section 4.5.3).
  Cycles t = 0;
  for (uint32_t i = 0; i < 2000; ++i) {
    logger_.OnBusWrite(kDataPage + (4 * i) % kPageSize, i, 4, true, t, 0);
    t += 2 * params_.logger_service_active_cycles;
  }
  EXPECT_EQ(client_.overloads, 0);
  EXPECT_LE(logger_.fifo_occupancy(), 2u);
}

TEST_F(HardwareLoggerTest, BurstsWithinFifoCapacityAbsorbed) {
  // A burst smaller than the threshold is absorbed without overload, given
  // idle time afterwards (the FIFOs' purpose).
  uint32_t burst = params_.logger_fifo_threshold - 1;
  for (uint32_t i = 0; i < burst; ++i) {
    logger_.OnBusWrite(kDataPage + (4 * i) % kPageSize, i, 4, true, i, 0);
  }
  EXPECT_EQ(client_.overloads, 0);
  logger_.SyncDrain(0);
  EXPECT_EQ(logger_.records_logged(), burst);
}

TEST_F(HardwareLoggerTest, DirectMappedModeWritesAtCorrespondingOffset) {
  uint32_t index = 0;
  ASSERT_TRUE(logger_.log_table().Allocate(LogMode::kDirectMapped, &index));
  PhysAddr data_page = 0x20000;
  PhysAddr mirror_frame = 0x50000;
  logger_.page_mapping_table().Load(data_page, index, mirror_frame);
  logger_.OnBusWrite(data_page + 0x123 * 4, 77, 4, true, 0, 0);
  logger_.SyncDrain(1u << 20);
  EXPECT_EQ(memory_.Read(mirror_frame + 0x123 * 4, 4), 77u);
  EXPECT_EQ(client_.tail_faults, 0);
}

TEST_F(HardwareLoggerTest, IndexedModeStreamsValuesOnly) {
  uint32_t index = 0;
  ASSERT_TRUE(logger_.log_table().Allocate(LogMode::kIndexed, &index));
  PhysAddr data_page = 0x20000;
  logger_.page_mapping_table().Load(data_page, index);
  logger_.log_table().SetTail(index, 0x60000);
  for (uint32_t i = 0; i < 8; ++i) {
    logger_.OnBusWrite(data_page + 4 * i, 100 + i, 4, true, 10 * i, 0);
  }
  logger_.SyncDrain(1u << 20);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(memory_.Read(0x60000 + 4 * i, 4), 100 + i);
  }
}

TEST_F(HardwareLoggerTest, TimestampsAreMonotonic) {
  logger_.log_table().SetTail(0, kLogPage);
  for (uint32_t i = 0; i < 16; ++i) {
    logger_.OnBusWrite(kDataPage + 4 * i, i, 4, true, 100 * i, 0);
  }
  logger_.SyncDrain(1u << 20);
  uint32_t last = 0;
  for (uint32_t i = 0; i < 16; ++i) {
    LogRecord record = LoadLogRecord(memory_, kLogPage + i * kLogRecordSize);
    EXPECT_GE(record.timestamp, last);
    last = record.timestamp;
  }
}

}  // namespace
}  // namespace lvm
