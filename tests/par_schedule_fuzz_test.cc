// Schedule fuzzer for the parallel execution engine (src/par).
//
// Four CPUs share one logged region and one log. Each trial runs the
// engine's deterministic mode under a different seed, so the token-passing
// scheduler explores a different interleaving of the workers' writes while
// staying exactly replayable: any failure prints the seed, and re-running
// with that seed reproduces the identical schedule.
//
// Every trial is cross-checked two ways:
//   - InvariantChecker snoops the bus ahead of the logger and verifies the
//     one-record-per-write, tail-discipline and overload invariants;
//   - LogReplayVerifier replays the appended records over a pre-run shadow
//     of the region and diffs against memory, so a dropped, duplicated or
//     reordered record under any schedule surfaces as a byte mismatch.
//
// Hot trials pace writes faster than the logger's service rate to force
// FIFO overload suspensions mid-schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/check/invariant_checker.h"
#include "src/check/log_replay_verifier.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/par/engine.h"

namespace lvm {
namespace {

constexpr int kNumCpus = 4;
constexpr uint32_t kStepsPerWorker = 400;
constexpr uint32_t kRegionPages = 4;
constexpr uint32_t kRegionWords = kRegionPages * kPageSize / 4;

struct Trial {
  uint64_t seed;
  bool hot;  // Pace writes faster than the service rate to force overloads.
};

void RunTrial(const Trial& trial) {
  SCOPED_TRACE(::testing::Message() << "seed=" << trial.seed
                                    << (trial.hot ? " (hot)" : " (paced)"));
  LvmConfig config;
  config.num_cpus = kNumCpus;
  LvmSystem system(config);
  InvariantChecker checker(&system);

  StdSegment* segment = system.CreateSegment(kRegionPages * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(8);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  for (int i = 0; i < kNumCpus; ++i) {
    system.Activate(as, i);
  }

  LogReplayVerifier verifier(&system);
  verifier.Snapshot(&system.cpu(0), segment, log);

  par::EngineConfig engine_config;
  engine_config.mode = par::Mode::kDeterministic;
  engine_config.seed = trial.seed;
  engine_config.min_quantum = 1;
  engine_config.max_quantum = 24;
  par::ParallelEngine engine(&system, engine_config);
  for (int worker = 0; worker < kNumCpus; ++worker) {
    // The worker's write stream depends only on (seed, worker), never on
    // the schedule, so the interleaving is the sole fuzzed variable.
    auto rng = std::make_shared<Rng>(trial.seed * 8191 + worker);
    bool hot = trial.hot;
    engine.AddWorker(nullptr, [rng, base, hot](Cpu& cpu, uint64_t step) {
      VirtAddr va = base + 4 * static_cast<VirtAddr>(rng->Uniform(kRegionWords));
      cpu.Write(va, static_cast<uint32_t>(rng->Next64()));
      cpu.Compute(hot ? rng->UniformRange(0, 8) : rng->UniformRange(40, 120));
      return step + 1 < kStepsPerWorker;
    });
  }
  engine.Run();
  system.SyncLog(&system.cpu(0), log);

  checker.CheckDrained();
  checker.CheckVmState();
  EXPECT_TRUE(checker.ok()) << "seed=" << trial.seed << "\n" << checker.Report();

  std::vector<ReplayMismatch> mismatches = verifier.Verify(&system.cpu(0), 16, region);
  EXPECT_TRUE(mismatches.empty()) << "seed=" << trial.seed << "\n"
                                  << LogReplayVerifier::Describe(mismatches);

  LogReader reader(system.memory(), *log);
  EXPECT_EQ(reader.size(), static_cast<size_t>(kNumCpus) * kStepsPerWorker);
  EXPECT_EQ(log->records_lost, 0u);
  if (trial.hot) {
    EXPECT_GT(system.overload_suspensions(), 0u);
  }
}

TEST(ParScheduleFuzzTest, PacedSchedules) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 99ull, 1000ull, 424242ull}) {
    RunTrial({seed, /*hot=*/false});
  }
}

TEST(ParScheduleFuzzTest, HotSchedulesForceOverloads) {
  for (uint64_t seed : {11ull, 12ull, 13ull, 777ull, 31337ull, 5550123ull}) {
    RunTrial({seed, /*hot=*/true});
  }
}

}  // namespace
}  // namespace lvm
