// Tests of the real-host (mprotect/SIGSEGV) logging and checkpointing
// backend, and of the durable WAL stack built on top of it (wal_arena.h,
// durable_region.h) — the crash-free paths; tests/wal_crash_matrix_test.cc
// owns the dying-process cells.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/hostlvm/durable_region.h"
#include "src/hostlvm/host_checkpoint.h"
#include "src/hostlvm/logged_value.h"
#include "src/hostlvm/protected_region.h"
#include "src/hostlvm/wal_arena.h"
#include "src/hostlvm/wal_layout.h"
#include "src/hostlvm/write_protect_logger.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace lvm {
namespace {

TEST(ProtectedRegionTest, FaultMarksPageDirty) {
  ProtectedRegion region(8, /*keep_twins=*/false);
  region.Arm();
  EXPECT_TRUE(region.DirtyPages().empty());
  region.data()[0] = 1;
  region.data()[3 * ProtectedRegion::kHostPageSize + 7] = 2;
  auto dirty = region.DirtyPages();
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], 0u);
  EXPECT_EQ(dirty[1], 3u);
  EXPECT_EQ(region.faults(), 2u);
}

TEST(ProtectedRegionTest, OneFaultPerPage) {
  ProtectedRegion region(4, /*keep_twins=*/false);
  region.Arm();
  for (int i = 0; i < 100; ++i) {
    region.data()[static_cast<size_t>(i) * 8] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(region.faults(), 1u);  // 800 bytes: all in page 0.
}

TEST(ProtectedRegionTest, ReadsDoNotFault) {
  ProtectedRegion region(2, /*keep_twins=*/false);
  region.data()[100] = 42;
  region.Arm();
  volatile uint8_t value = region.data()[100];
  EXPECT_EQ(value, 42);
  EXPECT_EQ(region.faults(), 0u);
  EXPECT_TRUE(region.DirtyPages().empty());
}

TEST(ProtectedRegionTest, TwinSnapshotsPreModificationState) {
  ProtectedRegion region(2, /*keep_twins=*/true);
  region.data()[10] = 7;
  region.Arm();
  region.data()[10] = 9;
  ASSERT_TRUE(region.IsDirty(0));
  EXPECT_EQ(region.Twin(0)[10], 7);
  EXPECT_EQ(region.data()[10], 9);
}

TEST(ProtectedRegionTest, RestoreRollsBackDirtyPages) {
  ProtectedRegion region(4, /*keep_twins=*/true);
  std::memset(region.data(), 0xAA, region.size_bytes());
  region.Arm();
  region.data()[5] = 1;
  region.data()[2 * ProtectedRegion::kHostPageSize] = 2;
  region.RestoreDirtyPagesFromTwins();
  EXPECT_EQ(region.data()[5], 0xAA);
  EXPECT_EQ(region.data()[2 * ProtectedRegion::kHostPageSize], 0xAA);
}

TEST(ProtectedRegionTest, TwoRegionsIndependent) {
  ProtectedRegion a(2, false);
  ProtectedRegion b(2, false);
  a.Arm();
  b.Arm();
  a.data()[0] = 1;
  EXPECT_EQ(a.DirtyPages().size(), 1u);
  EXPECT_TRUE(b.DirtyPages().empty());
  b.data()[ProtectedRegion::kHostPageSize] = 1;
  EXPECT_EQ(b.DirtyPages().size(), 1u);
}

TEST(WriteProtectLoggerTest, CollectsDirtyPagesAndRearms) {
  WriteProtectLogger logger(8, /*word_level=*/false);
  logger.data()[0] = 1;
  logger.data()[5 * ProtectedRegion::kHostPageSize] = 2;
  auto pages = logger.CollectDirtyPages();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], 0u);
  EXPECT_EQ(pages[1], 5u);
  // Re-armed: a new interval starts clean.
  EXPECT_TRUE(logger.CollectDirtyPages().empty());
  logger.data()[0] = 3;
  EXPECT_EQ(logger.CollectDirtyPages().size(), 1u);
}

TEST(WriteProtectLoggerTest, WordLevelDiffsFindExactUpdates) {
  WriteProtectLogger logger(4, /*word_level=*/true);
  auto* words = reinterpret_cast<uint32_t*>(logger.data());
  words[0] = 0;  // Pre-state before arming happened in the constructor, so
                 // this is itself an update.
  words[100] = 0xdead;
  auto updates = logger.CollectWordUpdates();
  // words[0] = 0 wrote the existing value: only the 0xdead shows.
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].offset, 400u);
  EXPECT_EQ(updates[0].value, 0xdeadu);
}

TEST(WriteProtectLoggerTest, RepeatedWritesCoalesceToFinalValue) {
  WriteProtectLogger logger(2, /*word_level=*/true);
  auto* words = reinterpret_cast<uint32_t*>(logger.data());
  for (uint32_t i = 1; i <= 50; ++i) {
    words[3] = i;
  }
  auto updates = logger.CollectWordUpdates();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].value, 50u);
  EXPECT_EQ(logger.faults(), 1u);
}

TEST(HostCheckpointTest, RestoreUndoesEverything) {
  HostCheckpoint ckpt(8);
  auto* words = reinterpret_cast<uint32_t*>(ckpt.data());
  ckpt.Checkpoint();
  words[0] = 1;
  words[1024] = 2;  // Page 1.
  words[5000] = 3;  // Page 4.
  EXPECT_EQ(ckpt.dirty_pages(), 3u);
  ckpt.Restore();
  EXPECT_EQ(words[0], 0u);
  EXPECT_EQ(words[1024], 0u);
  EXPECT_EQ(words[5000], 0u);
}

TEST(HostCheckpointTest, CheckpointCommitsThenRestoreReturnsThere) {
  HostCheckpoint ckpt(4);
  auto* words = reinterpret_cast<uint32_t*>(ckpt.data());
  words[7] = 41;
  ckpt.Checkpoint();
  words[7] = 99;
  words[8] = 100;
  ckpt.Restore();
  EXPECT_EQ(words[7], 41u);
  EXPECT_EQ(words[8], 0u);
}

TEST(HostCheckpointTest, ManyIntervals) {
  HostCheckpoint ckpt(4);
  auto* words = reinterpret_cast<uint32_t*>(ckpt.data());
  for (uint32_t round = 1; round <= 10; ++round) {
    words[0] = round;
    if (round % 2 == 0) {
      ckpt.Restore();  // Undo even rounds.
      EXPECT_EQ(words[0], round - 1);
      words[0] = round - 1;  // Keep the odd value.
    }
    ckpt.Checkpoint();
  }
  EXPECT_EQ(words[0], 9u);
}

TEST(LoggedValueTest, AssignmentsAreLogged) {
  HostLog log;
  Logged<uint32_t> counter(&log, 10);
  counter = 20;
  counter += 5;
  EXPECT_EQ(counter.value(), 25u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].old_value, 10u);
  EXPECT_EQ(log.records()[0].new_value, 20u);
  EXPECT_EQ(log.records()[1].old_value, 20u);
  EXPECT_EQ(log.records()[1].new_value, 25u);
}

TEST(LoggedValueTest, UndoAllRestoresInitialState) {
  HostLog log;
  Logged<uint32_t> a(&log, 1);
  Logged<uint64_t> b(&log, 2);
  a = 100;
  b = 200;
  a = 101;
  log.UndoAll();
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(LoggedValueTest, TruncateKeepsValues) {
  HostLog log;
  Logged<int> x(&log, 0);
  x = 5;
  log.Truncate();
  EXPECT_EQ(x.value(), 5);
  log.UndoAll();          // Nothing to undo.
  EXPECT_EQ(x.value(), 5);
}

// --- the durable WAL arena (crash-free paths) ---

std::string FreshTempPath(const std::string& name) {
  const testing::TestInfo* info = testing::UnitTest::GetInstance()->current_test_info();
  const std::string path =
      testing::TempDir() + info->test_suite_name() + "_" + info->name() + "_" + name;
  const std::string command = "rm -rf " + path;
  EXPECT_EQ(std::system(command.c_str()), 0);
  return path;
}

std::vector<WalRecord> MakeRecords(std::initializer_list<std::pair<uint64_t, uint64_t>> kv) {
  std::vector<WalRecord> records;
  for (const auto& [offset, value] : kv) {
    WalRecord record;
    record.offset = offset;
    record.value = value;
    record.size = 4;
    records.push_back(record);
  }
  return records;
}

TEST(WalArenaTest, AppendFlushReplayRoundTrip) {
  const std::string path = FreshTempPath("arena.wal");
  WalOptions options;
  options.blocks = 8;
  options.group_commit_window = 2;
  std::string error;
  auto arena = WalArena::Create(path, options, &error);
  ASSERT_NE(arena, nullptr) << error;

  EXPECT_EQ(arena->Append(MakeRecords({{0, 11}, {8, 12}}), /*timestamp_ns=*/100), 1u);
  EXPECT_EQ(arena->pending_commits(), 1u);  // Window is 2: still staged.
  EXPECT_EQ(arena->Append(MakeRecords({{16, 13}}), /*timestamp_ns=*/200), 2u);
  EXPECT_EQ(arena->pending_commits(), 0u);  // Group flushed together.
  EXPECT_EQ(arena->flushes(), 1u);
  arena.reset();  // Destructor flushes anything staged (nothing here).

  auto reopened = WalArena::Open(path, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_FALSE(reopened->recovered());  // Not ready to append yet.
  std::vector<WalRecoveredCommit> commits;
  WalRecoveryStats stats = reopened->Replay(
      [&commits](const WalRecoveredCommit& commit) { commits.push_back(commit); });
  EXPECT_TRUE(reopened->recovered());
  ASSERT_EQ(commits.size(), 2u);
  EXPECT_EQ(commits[0].seq, 1u);
  EXPECT_EQ(commits[0].timestamp_ns, 100u);
  ASSERT_EQ(commits[0].records.size(), 2u);
  EXPECT_EQ(commits[0].records[1].offset, 8u);
  EXPECT_EQ(commits[0].records[1].value, 12u);
  EXPECT_EQ(commits[1].seq, 2u);
  EXPECT_EQ(stats.commits_applied, 2u);
  EXPECT_EQ(stats.records_applied, 3u);
  EXPECT_FALSE(stats.tail_torn);
  // Recovered arenas keep appending where the stream ends.
  EXPECT_EQ(reopened->next_seq(), 3u);
  EXPECT_EQ(reopened->Append(MakeRecords({{24, 14}})), 3u);
}

TEST(WalArenaTest, DestructorFlushesStagedCommits) {
  const std::string path = FreshTempPath("arena.wal");
  WalOptions options;
  options.blocks = 8;
  options.group_commit_window = 100;  // Nothing auto-flushes.
  {
    auto arena = WalArena::Create(path, options);
    ASSERT_NE(arena, nullptr);
    EXPECT_EQ(arena->Append(MakeRecords({{0, 7}})), 1u);
    EXPECT_EQ(arena->pending_commits(), 1u);
  }
  auto reopened = WalArena::Open(path);
  ASSERT_NE(reopened, nullptr);
  uint64_t applied = 0;
  reopened->Replay([&applied](const WalRecoveredCommit&) { ++applied; });
  EXPECT_EQ(applied, 1u);
}

TEST(WalArenaTest, AppendFailsWhenOutOfSpaceAndTruncateReclaims) {
  const std::string path = FreshTempPath("arena.wal");
  WalOptions options;
  options.blocks = 2;  // ~8 KB of payload.
  options.group_commit_window = 1;
  auto arena = WalArena::Create(path, options);
  ASSERT_NE(arena, nullptr);
  std::vector<WalRecord> big(100);  // 2464 bytes per commit.
  for (size_t i = 0; i < big.size(); ++i) {
    big[i].offset = i * 4;
    big[i].value = i;
    big[i].size = 4;
  }
  uint64_t appended = 0;
  while (true) {
    uint64_t seq = arena->Append(big);
    if (seq == 0) {
      break;
    }
    appended = seq;
  }
  EXPECT_GT(appended, 0u);
  EXPECT_LT(appended, 10u);  // The tiny arena really did fill up.
  arena->Truncate(appended);
  // Reclaimed: the same commit fits again, and sequences keep increasing
  // (a fresh epoch never reuses sequence numbers).
  const uint64_t next = arena->Append(big);
  EXPECT_EQ(next, appended + 1);
  // Replay after truncation sees only the post-checkpoint commit.
  auto reopened = WalArena::Open(path);
  ASSERT_NE(reopened, nullptr);
  std::vector<uint64_t> seqs;
  reopened->Replay([&seqs](const WalRecoveredCommit& c) { seqs.push_back(c.seq); });
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], next);
}

TEST(WalArenaTest, OpenRejectsForeignFile) {
  const std::string path = FreshTempPath("not_a_wal");
  {
    auto file = HostMappedFile::Create(path, 64 * 1024);
    ASSERT_NE(file, nullptr);
    std::memset(file->data(), 0x5a, 4096);
  }
  std::string error;
  EXPECT_EQ(WalArena::Open(path, &error), nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  // OpenOrCreate must refuse too, not silently truncate the file.
  error.clear();
  EXPECT_EQ(WalArena::OpenOrCreate(path, WalOptions{}, nullptr, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(WalArenaTest, MetricsAndFlightEventsFlow) {
  const std::string path = FreshTempPath("arena.wal");
  WalOptions options;
  options.blocks = 8;
  options.group_commit_window = 1;
  auto arena = WalArena::Create(path, options);
  ASSERT_NE(arena, nullptr);
  obs::MetricsRegistry registry;
  arena->RegisterMetrics(&registry);
  obs::FlightRecorder flight(1);
  arena->SetFlightRecorder(&flight, /*ring=*/0);

  EXPECT_EQ(arena->Append(MakeRecords({{0, 1}, {4, 2}, {8, 3}})), 1u);
  obs::Snapshot snapshot = registry.TakeSnapshot();
  EXPECT_EQ(snapshot.counter("wal.commits"), 1u);
  EXPECT_EQ(snapshot.counter("wal.records"), 3u);
  EXPECT_EQ(snapshot.counter("wal.flushes"), 1u);
  EXPECT_GT(snapshot.counter("wal.bytes_appended"), 0u);
  const obs::HistogramSnapshot* hist = snapshot.histogram("wal.commit_records");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_EQ(hist->sum, 3u);

  bool saw_commit = false;
  bool saw_flush = false;
  for (const obs::FlightEvent& event : flight.MergedEvents()) {
    saw_commit |= event.kind == obs::FlightEventKind::kWalCommit;
    saw_flush |= event.kind == obs::FlightEventKind::kWalGroupFlush;
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_flush);

  // The walbox dump is strict JSON and carries the counters.
  const std::string box = arena->WalBoxJson("test", "detail");
  EXPECT_TRUE(obs::ValidateJson(box)) << box;
}

// --- the durable region over image + WAL ---

TEST(DurableRegionTest, CommitsSurviveReopen) {
  const std::string dir = FreshTempPath("region");
  DurableRegionOptions options;
  options.pages = 2;
  options.wal.group_commit_window = 1;
  {
    auto region = DurableTransactionalRegion::Open(dir, options);
    ASSERT_NE(region, nullptr);
    region->Begin();
    region->data<uint32_t>()[5] = 1234;
    region->data<uint32_t>()[2000] = 5678;  // Second page.
    EXPECT_GT(region->Commit(), 0u);
    region->Begin();
    region->data<uint32_t>()[5] = 4321;  // Overwrite, then abort: lost.
    region->Abort();
  }
  auto region = DurableTransactionalRegion::Open(dir, options);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->data<uint32_t>()[5], 1234u);
  EXPECT_EQ(region->data<uint32_t>()[2000], 5678u);
  EXPECT_EQ(region->recovery_stats().commits_applied, 1u);
}

TEST(DurableRegionTest, CheckpointTruncatesWalAndPreservesState) {
  const std::string dir = FreshTempPath("region");
  DurableRegionOptions options;
  options.pages = 1;
  options.wal.group_commit_window = 1;
  {
    auto region = DurableTransactionalRegion::Open(dir, options);
    ASSERT_NE(region, nullptr);
    for (uint32_t i = 0; i < 10; ++i) {
      region->Begin();
      region->data<uint32_t>()[i] = i + 1;
      EXPECT_EQ(region->Commit(), i + 1);
    }
    region->Checkpoint();
    EXPECT_EQ(region->checkpoints(), 1u);
    EXPECT_EQ(region->wal()->superblock().checkpoint_seq, 10u);
    // Post-checkpoint commits land in the truncated log.
    region->Begin();
    region->data<uint32_t>()[100] = 42;
    EXPECT_EQ(region->Commit(), 11u);
  }
  auto region = DurableTransactionalRegion::Open(dir, options);
  ASSERT_NE(region, nullptr);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(region->data<uint32_t>()[i], i + 1);
  }
  EXPECT_EQ(region->data<uint32_t>()[100], 42u);
  // Only the post-checkpoint commit replayed; the rest came from the image.
  EXPECT_EQ(region->recovery_stats().commits_applied, 1u);
}

TEST(DurableRegionTest, LogFullCommitCheckpointsAndSucceeds) {
  const std::string dir = FreshTempPath("region");
  DurableRegionOptions options;
  options.pages = 1;
  options.wal.blocks = 8;  // Tiny log: one commit fits, two do not.
  options.wal.group_commit_window = 1;
  auto region = DurableTransactionalRegion::Open(dir, options);
  ASSERT_NE(region, nullptr);
  // Each commit dirties every word of the page: ~24 KB of records against
  // ~32 KB of log, so the auto-checkpoint path must trigger.
  for (uint32_t round = 1; round <= 5; ++round) {
    region->Begin();
    for (size_t w = 0; w < 1024; ++w) {
      region->data<uint32_t>()[w] = round * 10000 + static_cast<uint32_t>(w);
    }
    EXPECT_GT(region->Commit(), 0u);
  }
  EXPECT_GT(region->checkpoints(), 0u);
  for (size_t w = 0; w < 1024; ++w) {
    EXPECT_EQ(region->data<uint32_t>()[w], 5 * 10000 + static_cast<uint32_t>(w));
  }
}

// --- host_checkpoint + logged_value across a simulated reopen ---

// HostCheckpoint state pushed through a durable region: rollback intervals
// work on recovered memory exactly as on fresh memory.
TEST(HostCheckpointTest, StateCarriedAcrossSimulatedReopen) {
  const std::string dir = FreshTempPath("region");
  DurableRegionOptions options;
  options.pages = 1;
  {
    auto durable = DurableTransactionalRegion::Open(dir, options);
    ASSERT_NE(durable, nullptr);
    HostCheckpoint ckpt(1);
    auto* words = reinterpret_cast<uint32_t*>(ckpt.data());
    words[0] = 41;
    ckpt.Checkpoint();
    words[0] = 99;
    ckpt.Restore();  // Back to 41.
    durable->Begin();
    std::memcpy(durable->data(), ckpt.data(), ckpt.size_bytes());
    EXPECT_GT(durable->Commit(), 0u);
  }
  // The "reopen": a fresh process image reconstructs the checkpointed
  // state from disk and keeps rolling back on top of it.
  auto durable = DurableTransactionalRegion::Open(dir, options);
  ASSERT_NE(durable, nullptr);
  HostCheckpoint ckpt(1);
  std::memcpy(ckpt.data(), durable->data(), ckpt.size_bytes());
  auto* words = reinterpret_cast<uint32_t*>(ckpt.data());
  EXPECT_EQ(words[0], 41u);
  ckpt.Checkpoint();
  words[0] = 77;
  ckpt.Restore();
  EXPECT_EQ(words[0], 41u);
}

// Logged<T> write-barrier records translated into WAL commits: the
// instrumented-source alternative of Section 5.3 gains durability from the
// same arena, and replay on reopen rebuilds the values.
TEST(LoggedValueTest, RecordsReplayAcrossSimulatedReopen) {
  const std::string path = FreshTempPath("logged.wal");
  WalOptions options;
  options.blocks = 8;
  options.group_commit_window = 1;

  HostLog log;
  Logged<uint32_t> balance(&log, 100);
  Logged<uint32_t> count(&log, 0);
  balance += 50;
  count = 3;
  balance -= 20;

  {
    auto arena = WalArena::Create(path, options);
    ASSERT_NE(arena, nullptr);
    // One WAL record per barrier record; the offset is the field index
    // (a stand-in for a region offset), the value is the new datum.
    const uintptr_t balance_lo = reinterpret_cast<uintptr_t>(&balance);
    const uintptr_t balance_hi = balance_lo + sizeof(balance);
    std::vector<WalRecord> records;
    for (size_t i = 0; i < log.size(); ++i) {
      const HostLogRecord& r = log.records()[i];
      WalRecord out;
      out.offset = (r.addr >= balance_lo && r.addr < balance_hi) ? 0 : 4;
      out.value = r.new_value;
      out.size = r.size;
      records.push_back(out);
    }
    EXPECT_EQ(arena->Append(records), 1u);
  }

  auto arena = WalArena::Open(path);
  ASSERT_NE(arena, nullptr);
  uint32_t recovered[2] = {100, 0};  // The initial values, as on first open.
  arena->Replay([&recovered](const WalRecoveredCommit& commit) {
    for (const WalRecord& record : commit.records) {
      std::memcpy(reinterpret_cast<uint8_t*>(recovered) + record.offset, &record.value,
                  record.size);
    }
  });
  EXPECT_EQ(recovered[0], 130u);  // 100 + 50 - 20.
  EXPECT_EQ(recovered[1], 3u);
}

}  // namespace
}  // namespace lvm
