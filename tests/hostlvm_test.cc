// Tests of the real-host (mprotect/SIGSEGV) logging and checkpointing
// backend.
#include <gtest/gtest.h>

#include <cstring>

#include "src/hostlvm/host_checkpoint.h"
#include "src/hostlvm/logged_value.h"
#include "src/hostlvm/protected_region.h"
#include "src/hostlvm/write_protect_logger.h"

namespace lvm {
namespace {

TEST(ProtectedRegionTest, FaultMarksPageDirty) {
  ProtectedRegion region(8, /*keep_twins=*/false);
  region.Arm();
  EXPECT_TRUE(region.DirtyPages().empty());
  region.data()[0] = 1;
  region.data()[3 * ProtectedRegion::kHostPageSize + 7] = 2;
  auto dirty = region.DirtyPages();
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], 0u);
  EXPECT_EQ(dirty[1], 3u);
  EXPECT_EQ(region.faults(), 2u);
}

TEST(ProtectedRegionTest, OneFaultPerPage) {
  ProtectedRegion region(4, /*keep_twins=*/false);
  region.Arm();
  for (int i = 0; i < 100; ++i) {
    region.data()[static_cast<size_t>(i) * 8] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(region.faults(), 1u);  // 800 bytes: all in page 0.
}

TEST(ProtectedRegionTest, ReadsDoNotFault) {
  ProtectedRegion region(2, /*keep_twins=*/false);
  region.data()[100] = 42;
  region.Arm();
  volatile uint8_t value = region.data()[100];
  EXPECT_EQ(value, 42);
  EXPECT_EQ(region.faults(), 0u);
  EXPECT_TRUE(region.DirtyPages().empty());
}

TEST(ProtectedRegionTest, TwinSnapshotsPreModificationState) {
  ProtectedRegion region(2, /*keep_twins=*/true);
  region.data()[10] = 7;
  region.Arm();
  region.data()[10] = 9;
  ASSERT_TRUE(region.IsDirty(0));
  EXPECT_EQ(region.Twin(0)[10], 7);
  EXPECT_EQ(region.data()[10], 9);
}

TEST(ProtectedRegionTest, RestoreRollsBackDirtyPages) {
  ProtectedRegion region(4, /*keep_twins=*/true);
  std::memset(region.data(), 0xAA, region.size_bytes());
  region.Arm();
  region.data()[5] = 1;
  region.data()[2 * ProtectedRegion::kHostPageSize] = 2;
  region.RestoreDirtyPagesFromTwins();
  EXPECT_EQ(region.data()[5], 0xAA);
  EXPECT_EQ(region.data()[2 * ProtectedRegion::kHostPageSize], 0xAA);
}

TEST(ProtectedRegionTest, TwoRegionsIndependent) {
  ProtectedRegion a(2, false);
  ProtectedRegion b(2, false);
  a.Arm();
  b.Arm();
  a.data()[0] = 1;
  EXPECT_EQ(a.DirtyPages().size(), 1u);
  EXPECT_TRUE(b.DirtyPages().empty());
  b.data()[ProtectedRegion::kHostPageSize] = 1;
  EXPECT_EQ(b.DirtyPages().size(), 1u);
}

TEST(WriteProtectLoggerTest, CollectsDirtyPagesAndRearms) {
  WriteProtectLogger logger(8, /*word_level=*/false);
  logger.data()[0] = 1;
  logger.data()[5 * ProtectedRegion::kHostPageSize] = 2;
  auto pages = logger.CollectDirtyPages();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], 0u);
  EXPECT_EQ(pages[1], 5u);
  // Re-armed: a new interval starts clean.
  EXPECT_TRUE(logger.CollectDirtyPages().empty());
  logger.data()[0] = 3;
  EXPECT_EQ(logger.CollectDirtyPages().size(), 1u);
}

TEST(WriteProtectLoggerTest, WordLevelDiffsFindExactUpdates) {
  WriteProtectLogger logger(4, /*word_level=*/true);
  auto* words = reinterpret_cast<uint32_t*>(logger.data());
  words[0] = 0;  // Pre-state before arming happened in the constructor, so
                 // this is itself an update.
  words[100] = 0xdead;
  auto updates = logger.CollectWordUpdates();
  // words[0] = 0 wrote the existing value: only the 0xdead shows.
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].offset, 400u);
  EXPECT_EQ(updates[0].value, 0xdeadu);
}

TEST(WriteProtectLoggerTest, RepeatedWritesCoalesceToFinalValue) {
  WriteProtectLogger logger(2, /*word_level=*/true);
  auto* words = reinterpret_cast<uint32_t*>(logger.data());
  for (uint32_t i = 1; i <= 50; ++i) {
    words[3] = i;
  }
  auto updates = logger.CollectWordUpdates();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].value, 50u);
  EXPECT_EQ(logger.faults(), 1u);
}

TEST(HostCheckpointTest, RestoreUndoesEverything) {
  HostCheckpoint ckpt(8);
  auto* words = reinterpret_cast<uint32_t*>(ckpt.data());
  ckpt.Checkpoint();
  words[0] = 1;
  words[1024] = 2;  // Page 1.
  words[5000] = 3;  // Page 4.
  EXPECT_EQ(ckpt.dirty_pages(), 3u);
  ckpt.Restore();
  EXPECT_EQ(words[0], 0u);
  EXPECT_EQ(words[1024], 0u);
  EXPECT_EQ(words[5000], 0u);
}

TEST(HostCheckpointTest, CheckpointCommitsThenRestoreReturnsThere) {
  HostCheckpoint ckpt(4);
  auto* words = reinterpret_cast<uint32_t*>(ckpt.data());
  words[7] = 41;
  ckpt.Checkpoint();
  words[7] = 99;
  words[8] = 100;
  ckpt.Restore();
  EXPECT_EQ(words[7], 41u);
  EXPECT_EQ(words[8], 0u);
}

TEST(HostCheckpointTest, ManyIntervals) {
  HostCheckpoint ckpt(4);
  auto* words = reinterpret_cast<uint32_t*>(ckpt.data());
  for (uint32_t round = 1; round <= 10; ++round) {
    words[0] = round;
    if (round % 2 == 0) {
      ckpt.Restore();  // Undo even rounds.
      EXPECT_EQ(words[0], round - 1);
      words[0] = round - 1;  // Keep the odd value.
    }
    ckpt.Checkpoint();
  }
  EXPECT_EQ(words[0], 9u);
}

TEST(LoggedValueTest, AssignmentsAreLogged) {
  HostLog log;
  Logged<uint32_t> counter(&log, 10);
  counter = 20;
  counter += 5;
  EXPECT_EQ(counter.value(), 25u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].old_value, 10u);
  EXPECT_EQ(log.records()[0].new_value, 20u);
  EXPECT_EQ(log.records()[1].old_value, 20u);
  EXPECT_EQ(log.records()[1].new_value, 25u);
}

TEST(LoggedValueTest, UndoAllRestoresInitialState) {
  HostLog log;
  Logged<uint32_t> a(&log, 1);
  Logged<uint64_t> b(&log, 2);
  a = 100;
  b = 200;
  a = 101;
  log.UndoAll();
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(LoggedValueTest, TruncateKeepsValues) {
  HostLog log;
  Logged<int> x(&log, 0);
  x = 5;
  log.Truncate();
  EXPECT_EQ(x.value(), 5);
  log.UndoAll();          // Nothing to undo.
  EXPECT_EQ(x.value(), 5);
}

}  // namespace
}  // namespace lvm
